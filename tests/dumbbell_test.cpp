// Tests for the dumbbell topology builder: wiring, delays, and end-to-end
// packet delivery in both directions.
#include "net/dumbbell.hpp"

#include <gtest/gtest.h>

#include "net/red_queue.hpp"
#include "sim/simulation.hpp"

namespace rbs::net {
namespace {

using namespace rbs::sim::literals;

class EchoAgent final : public Agent {
 public:
  explicit EchoAgent(std::vector<std::int64_t>& log) : log_{log} {}
  void on_packet(const Packet& p) override { log_.push_back(p.seq); }

 private:
  std::vector<std::int64_t>& log_;
};

TEST(Dumbbell, RttIsTwiceSumOfOneWayDelays) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 2;
  cfg.bottleneck_delay = 10_ms;
  cfg.receiver_delay = 1_ms;
  cfg.access_delays = {5_ms, 25_ms};
  Dumbbell topo{sim, cfg};

  EXPECT_EQ(topo.rtt(0), 2 * (5_ms + 10_ms + 1_ms));
  EXPECT_EQ(topo.rtt(1), 2 * (25_ms + 10_ms + 1_ms));
  EXPECT_EQ(topo.mean_rtt(), 2 * (15_ms + 10_ms + 1_ms));
}

TEST(Dumbbell, RandomDelaysFallInConfiguredRange) {
  sim::Simulation sim{7};
  DumbbellConfig cfg;
  cfg.num_leaves = 50;
  cfg.access_delay_min = 5_ms;
  cfg.access_delay_max = 35_ms;
  cfg.bottleneck_delay = 10_ms;
  cfg.receiver_delay = 1_ms;
  Dumbbell topo{sim, cfg};
  for (int i = 0; i < 50; ++i) {
    const auto rtt = topo.rtt(i);
    EXPECT_GE(rtt, 2 * (5_ms + 11_ms));
    EXPECT_LE(rtt, 2 * (35_ms + 11_ms));
  }
}

TEST(Dumbbell, BdpMatchesHandComputation) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.bottleneck_delay = 10_ms;
  cfg.receiver_delay = 1_ms;
  cfg.access_delays = {35_ms};
  Dumbbell topo{sim, cfg};
  // RTT = 92 ms; 10 Mb/s * 0.092 s / 8000 bits = 115 packets.
  EXPECT_NEAR(topo.bdp_packets(core::Bytes{1000}), 115.0, 0.01);
}

TEST(Dumbbell, ForwardPathDeliversToReceiver) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 2;
  cfg.access_delays = {5_ms, 6_ms};
  Dumbbell topo{sim, cfg};

  std::vector<std::int64_t> log0, log1;
  EchoAgent agent0{log0}, agent1{log1};
  topo.receiver(0).register_agent(1, agent0);
  topo.receiver(1).register_agent(2, agent1);

  Packet p;
  p.flow = 1;
  p.src = topo.sender(0).id();
  p.dst = topo.receiver(0).id();
  p.seq = 42;
  p.size_bytes = 100;
  topo.sender(0).send(p);

  p.flow = 2;
  p.dst = topo.receiver(1).id();
  p.seq = 43;
  topo.sender(1).send(p);

  sim.run();
  EXPECT_EQ(log0, (std::vector<std::int64_t>{42}));
  EXPECT_EQ(log1, (std::vector<std::int64_t>{43}));
}

TEST(Dumbbell, ReversePathDeliversToSender) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.access_delays = {5_ms};
  Dumbbell topo{sim, cfg};

  std::vector<std::int64_t> log;
  EchoAgent agent{log};
  topo.sender(0).register_agent(1, agent);

  Packet p;
  p.flow = 1;
  p.src = topo.receiver(0).id();
  p.dst = topo.sender(0).id();
  p.seq = 7;
  p.size_bytes = 40;
  topo.receiver(0).send(p);
  sim.run();
  EXPECT_EQ(log, (std::vector<std::int64_t>{7}));
}

TEST(Dumbbell, ForwardTraversalTimeMatchesPropagationPlusSerialization) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.bottleneck_rate = core::BitsPerSec{1e6};
  cfg.access_rate = core::BitsPerSec{1e6};
  cfg.bottleneck_delay = 10_ms;
  cfg.receiver_delay = 1_ms;
  cfg.access_delays = {5_ms};
  Dumbbell topo{sim, cfg};

  std::vector<std::int64_t> log;
  EchoAgent agent{log};
  topo.receiver(0).register_agent(1, agent);
  sim::SimTime arrival;
  // Wrap: record when the packet lands by sampling after run.
  Packet p;
  p.flow = 1;
  p.src = topo.sender(0).id();
  p.dst = topo.receiver(0).id();
  p.size_bytes = 1000;  // 8 ms at 1 Mb/s
  topo.sender(0).send(p);
  sim.run();
  arrival = sim.now();
  // Three hops serialize (8 ms each) and propagate (5 + 10 + 1 ms).
  EXPECT_EQ(arrival, 3 * 8_ms + 16_ms);
  EXPECT_EQ(log.size(), 1u);
}

TEST(Dumbbell, BottleneckBufferSizeIsConfigured) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.buffer_packets = 37;
  cfg.access_delays = {5_ms};
  Dumbbell topo{sim, cfg};
  EXPECT_EQ(topo.bottleneck().queue().limit_packets(), 37);
}

TEST(Dumbbell, RedDisciplineInstallsRedQueue) {
  sim::Simulation sim{1};
  DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.buffer_packets = 64;
  cfg.discipline = QueueDiscipline::kRed;
  cfg.access_delays = {5_ms};
  Dumbbell topo{sim, cfg};
  EXPECT_NE(dynamic_cast<RedQueue*>(&topo.bottleneck().queue()), nullptr);
}

TEST(Dumbbell, DistinctSeedsGiveDistinctDelaySpreads) {
  DumbbellConfig cfg;
  cfg.num_leaves = 10;
  sim::Simulation sim_a{1}, sim_b{2};
  Dumbbell a{sim_a, cfg}, b{sim_b, cfg};
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.rtt(i) != b.rtt(i)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace rbs::net
