// Property sweeps across protocol variants (TEST_P): every combination of
// TCP flavor × pacing × delayed ACKs must deliver reliably, keep a congested
// link busy, and stay deterministic.
#include <gtest/gtest.h>

#include <tuple>

#include "experiment/long_flow_experiment.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace rbs {
namespace {

using sim::SimTime;
using Variant = std::tuple<tcp::TcpFlavor, bool /*pacing*/, bool /*delack*/>;

std::string variant_name(const ::testing::TestParamInfo<Variant>& info) {
  const auto [flavor, pacing, delack] = info.param;
  std::string name = flavor == tcp::TcpFlavor::kTahoe  ? "tahoe"
                     : flavor == tcp::TcpFlavor::kReno ? "reno"
                                                       : "newreno";
  name += pacing ? "_paced" : "_unpaced";
  name += delack ? "_delack" : "_ackall";
  return name;
}

class VariantGrid : public ::testing::TestWithParam<Variant> {};

TEST_P(VariantGrid, ReliableDeliveryThroughLossyBottleneck) {
  const auto [flavor, pacing, delack] = GetParam();
  sim::Simulation sim{11};
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_leaves = 1;
  topo_cfg.bottleneck_rate = core::BitsPerSec{10e6};
  topo_cfg.buffer_packets = 15;  // well below BDP: guarantees loss
  topo_cfg.access_delays = {SimTime::milliseconds(20)};
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpConfig cfg;
  cfg.flavor = flavor;
  cfg.pacing = pacing;
  tcp::TcpSinkConfig sink_cfg;
  sink_cfg.delayed_ack = delack;

  tcp::TcpSink sink{sim, topo.receiver(0), 1, sink_cfg};
  tcp::TcpSource src{sim, topo.sender(0), topo.receiver(0).id(), 1, cfg, 1500};
  src.start(SimTime::zero());
  sim.run();

  EXPECT_TRUE(src.finished());
  EXPECT_EQ(sink.next_expected(), 1500);
  EXPECT_GT(src.stats().retransmissions, 0u);  // the path really was lossy
}

TEST_P(VariantGrid, CongestedLinkStaysBusy) {
  const auto [flavor, pacing, delack] = GetParam();
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 8;
  cfg.buffer_packets = 60;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(8);
  cfg.measure = SimTime::seconds(12);
  cfg.tcp.flavor = flavor;
  cfg.tcp.pacing = pacing;
  cfg.sink.delayed_ack = delack;

  const auto r = run_long_flow_experiment(cfg);
  EXPECT_GT(r.utilization, 0.85) << variant_name({GetParam(), 0});
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_LT(r.loss_rate, 0.2);
}

TEST_P(VariantGrid, DeterministicAcrossRepeats) {
  const auto [flavor, pacing, delack] = GetParam();
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 4;
  cfg.buffer_packets = 30;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(3);
  cfg.measure = SimTime::seconds(5);
  cfg.tcp.flavor = flavor;
  cfg.tcp.pacing = pacing;
  cfg.sink.delayed_ack = delack;

  const auto a = run_long_flow_experiment(cfg);
  const auto b = run_long_flow_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.tcp_stats.data_packets_sent, b.tcp_stats.data_packets_sent);
  EXPECT_EQ(a.bottleneck_drops, b.bottleneck_drops);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantGrid,
    ::testing::Combine(::testing::Values(tcp::TcpFlavor::kTahoe, tcp::TcpFlavor::kReno,
                                         tcp::TcpFlavor::kNewReno),
                       ::testing::Bool(), ::testing::Bool()),
    variant_name);

// ---------------------------------------------------------------------------
// Queue-discipline grid: drop-tail, RED, RED+ECN all sustain the sqrt rule.
// ---------------------------------------------------------------------------
class DisciplineGrid : public ::testing::TestWithParam<int> {};

TEST_P(DisciplineGrid, SqrtRuleBufferKeepsLinkBusy) {
  const int mode = GetParam();  // 0 droptail, 1 red, 2 red+ecn
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 16;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(8);
  cfg.measure = SimTime::seconds(15);
  // BDP ~ 100 pkts at the default delay spread; sqrt rule for 16 flows ~ 25.
  cfg.buffer_packets = 50;  // 2x for margin, still 1/2 the BDP
  if (mode >= 1) {
    cfg.discipline = net::QueueDiscipline::kRed;
    cfg.red.min_threshold = 25;
    cfg.red.max_threshold = 50;
    cfg.red.ecn_marking = mode == 2;
  }
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_GT(r.utilization, 0.88);
  if (mode == 2) {
    EXPECT_GT(r.tcp_stats.ecn_reductions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Disciplines, DisciplineGrid, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return info.param == 0   ? "droptail"
                                  : info.param == 1 ? "red"
                                                    : "red_ecn";
                         });

}  // namespace
}  // namespace rbs
