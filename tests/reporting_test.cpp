// Unit tests for the table/CSV reporting helpers.
#include "experiment/reporting.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace rbs::experiment {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t{{"name", "value"}};
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const auto out = t.render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| longer-name "), std::string::npos);
  // Every line ends at the same width.
  std::size_t first_nl = out.find('\n');
  std::size_t width = first_nl;
  for (std::size_t pos = 0; pos < out.size();) {
    const auto nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, width);
    pos = nl + 1;
  }
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t{{"a", "b", "c"}};
  t.add_row({"only-one"});
  const auto csv = t.to_csv();
  EXPECT_EQ(csv, "a,b,c\nonly-one,,\n");
}

TEST(TablePrinter, CsvRoundTrip) {
  TablePrinter t{{"x", "y"}};
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TablePrinter, CsvQuotesSpecialCharactersPerRfc4180) {
  // Regression: cells containing commas/quotes/newlines used to be joined
  // verbatim, silently corrupting downstream column parsing.
  TablePrinter t{{"name", "detail"}};
  t.add_row({"a,b", "says \"hi\""});
  t.add_row({"line\nbreak", "plain"});
  EXPECT_EQ(t.to_csv(),
            "name,detail\n"
            "\"a,b\",\"says \"\"hi\"\"\"\n"
            "\"line\nbreak\",plain\n");
}

TEST(WriteSeriesArtifacts, EmitsCsvAndGnuplotScript) {
  telemetry::SeriesTable series;
  series.columns = {"queue_depth_pkts", "utilization"};
  series.times_ps = {1'000'000'000'000, 2'000'000'000'000};
  series.rows = {{5.0, 0.5}, {7.0, 0.9}};

  const auto dir = std::filesystem::temp_directory_path() / "rbs_series_artifacts_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(write_series_artifacts(dir.string(), "point0", "demo", series));

  std::ifstream csv{dir / "point0.csv"};
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "time_sec,queue_depth_pkts,utilization");

  std::ifstream gp{dir / "point0.gp"};
  const std::string script{std::istreambuf_iterator<char>{gp}, {}};
  EXPECT_NE(script.find("point0.csv"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);  // queue depth vs time
  EXPECT_NE(script.find("using 1:3"), std::string::npos);  // utilization vs time
  std::filesystem::remove_all(dir);
}

TEST(WriteSeriesArtifacts, EmptySeriesIsANoop) {
  EXPECT_TRUE(write_series_artifacts("/nonexistent-dir-never-created", "x", "t", {}));
}

TEST(Format, BehavesLikePrintf) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "abc", 1.5), "7-abc-1.50");
}

TEST(WriteFile, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "rbs_reporting_test";
  std::filesystem::remove_all(dir);
  const auto path = (dir / "sub" / "file.csv").string();
  ASSERT_TRUE(write_file(path, "hello\n"));
  std::ifstream in{path};
  std::string contents;
  std::getline(in, contents);
  EXPECT_EQ(contents, "hello");
  std::filesystem::remove_all(dir);
}

TEST(WriteFile, FailsCleanlyOnBadPath) {
  EXPECT_FALSE(write_file("/proc/definitely/not/writable/x.csv", "x"));
}

}  // namespace
}  // namespace rbs::experiment
