// Positive thread-safety fixture: every guarded SweepBatchState access
// below holds the mutex through core::LockGuard / core::CvLock, so this TU
// must compile cleanly under -Wthread-safety -Werror=thread-safety (see
// scripts/check_thread_safety.py).
#include <cstddef>

#include "core/thread_annotations.hpp"
#include "experiment/sweep_dispatch.hpp"

namespace {

std::size_t guarded_reads(rbs::experiment::detail::SweepBatchState& state) {
  rbs::core::LockGuard lock{state.mutex};
  return state.batch_size + state.chunk + state.in_flight +
         static_cast<std::size_t>(state.sleeping_helpers) +
         static_cast<std::size_t>(state.point != nullptr) +
         static_cast<std::size_t>(static_cast<bool>(state.first_error));
}

void guarded_writes(rbs::experiment::detail::SweepBatchState& state) {
  rbs::core::CvLock lock{state.mutex};
  state.batch_size = 8;
  state.chunk = 2;
  state.in_flight = 0;
  ++state.sleeping_helpers;
  state.first_error = nullptr;
  state.point = nullptr;
}

}  // namespace

int run_fixture(rbs::experiment::detail::SweepBatchState& state) {
  guarded_writes(state);
  return static_cast<int>(guarded_reads(state));
}
