// Negative thread-safety fixture: reads ONE guarded SweepBatchState field
// without holding the mutex. scripts/check_thread_safety.py compiles this
// once per guarded field with -DRBS_TSA_FIELD=<field> and requires each
// compilation to FAIL under -Wthread-safety -Werror=thread-safety. If a
// compilation succeeds, the field's RBS_GUARDED_BY annotation in
// src/experiment/sweep_dispatch.hpp has been removed — which is the build
// failure this fixture exists to produce.
#include "experiment/sweep_dispatch.hpp"

#ifndef RBS_TSA_FIELD
#error "compile with -DRBS_TSA_FIELD=<guarded field name>"
#endif

bool unguarded_read(rbs::experiment::detail::SweepBatchState& state) {
  // No lock held: must be rejected by the thread-safety analysis.
  return static_cast<bool>(state.RBS_TSA_FIELD);
}
