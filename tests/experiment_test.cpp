// Tests for the experiment runners: determinism, measurement plumbing, and
// the buffer-search helpers. Scaled-down links keep each run fast.
#include <gtest/gtest.h>

#include "experiment/long_flow_experiment.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/short_flow_experiment.hpp"

namespace rbs::experiment {
namespace {

using sim::SimTime;

LongFlowExperimentConfig fast_long(int flows, std::int64_t buffer) {
  LongFlowExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.buffer_packets = buffer;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(5);
  cfg.measure = SimTime::seconds(10);
  return cfg;
}

TEST(LongFlowExperiment, DeterministicForSameSeed) {
  const auto a = run_long_flow_experiment(fast_long(10, 30));
  const auto b = run_long_flow_experiment(fast_long(10, 30));
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate);
  EXPECT_EQ(a.bottleneck_drops, b.bottleneck_drops);
}

TEST(LongFlowExperiment, SeedChangesOutcome) {
  auto cfg = fast_long(10, 30);
  const auto a = run_long_flow_experiment(cfg);
  cfg.seed = 99;
  const auto b = run_long_flow_experiment(cfg);
  EXPECT_NE(a.bottleneck_drops, b.bottleneck_drops);
}

TEST(LongFlowExperiment, ReportsTopologyDerivedQuantities) {
  const auto r = run_long_flow_experiment(fast_long(10, 30));
  // Default delays: access 5..53 ms, bottleneck 10 ms, receiver 1 ms.
  EXPECT_GT(r.mean_rtt_sec, 0.032);
  EXPECT_LT(r.mean_rtt_sec, 0.128);
  EXPECT_NEAR(r.bdp_packets, r.mean_rtt_sec * 10e6 / 8000.0, 1.0);
}

TEST(LongFlowExperiment, AdequateBufferGivesHighUtilization) {
  const auto r = run_long_flow_experiment(fast_long(10, 60));
  EXPECT_GT(r.utilization, 0.95);
}

TEST(LongFlowExperiment, TinyBufferLosesThroughputAndDropsPackets) {
  const auto r = run_long_flow_experiment(fast_long(2, 2));
  EXPECT_LT(r.utilization, 0.97);
  EXPECT_GT(r.bottleneck_drops, 0u);
  EXPECT_GT(r.loss_rate, 0.0);
}

TEST(LongFlowExperiment, CwndSamplingFillsSeries) {
  auto cfg = fast_long(5, 40);
  cfg.cwnd_sample_interval = SimTime::milliseconds(100);
  cfg.sample_per_flow_cwnd = true;
  const auto r = run_long_flow_experiment(cfg);
  // 10 s measurement at 100 ms -> ~100 samples.
  EXPECT_NEAR(static_cast<double>(r.total_cwnd.size()), 100.0, 3.0);
  ASSERT_EQ(r.per_flow_cwnd.size(), 5u);
  for (const auto& series : r.per_flow_cwnd) {
    EXPECT_EQ(series.size(), r.total_cwnd.size());
  }
  // Aggregate equals sum of per-flow at each sample.
  for (std::size_t i = 0; i < r.total_cwnd.size(); ++i) {
    double sum = 0;
    for (const auto& series : r.per_flow_cwnd) sum += series[i];
    EXPECT_NEAR(r.total_cwnd.points()[i].value, sum, 1e-9);
  }
}

TEST(LongFlowExperiment, NoSamplingWhenNotRequested) {
  const auto r = run_long_flow_experiment(fast_long(3, 40));
  EXPECT_TRUE(r.total_cwnd.empty());
  EXPECT_TRUE(r.per_flow_cwnd.empty());
}

TEST(MinBufferSearch, FindsThresholdConsistentWithDirectRuns) {
  auto cfg = fast_long(10, 0);
  const auto min_b = min_buffer_for_utilization(cfg, 0.95, 2, 200);
  EXPECT_GT(min_b, 2);
  EXPECT_LT(min_b, 200);
  cfg.buffer_packets = min_b;
  EXPECT_GE(run_long_flow_experiment(cfg).utilization, 0.95);
}

TEST(MinBufferSearch, ReturnsHiWhenTargetUnreachable) {
  auto cfg = fast_long(2, 0);
  cfg.measure = SimTime::seconds(5);
  // 2 flows cannot hit 99.99% with a 3-packet cap in this range.
  EXPECT_EQ(min_buffer_for_utilization(cfg, 0.9999, 2, 3), 3);
}

ShortFlowExperimentConfig fast_short() {
  ShortFlowExperimentConfig cfg;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.load = 0.7;
  cfg.flow_packets = 14;  // bursts 2,4,8
  cfg.num_leaves = 20;
  cfg.warmup = SimTime::seconds(3);
  cfg.measure = SimTime::seconds(15);
  cfg.buffer_packets = 300;
  return cfg;
}

TEST(ShortFlowExperiment, LoadMatchesTarget) {
  const auto r = run_short_flow_experiment(fast_short());
  EXPECT_NEAR(r.utilization, 0.7, 0.08);
  EXPECT_GT(r.flows_completed, 100u);
  EXPECT_GT(r.afct_seconds, 0.0);
}

TEST(ShortFlowExperiment, QueueTailIsMonotoneSurvival) {
  const auto r = run_short_flow_experiment(fast_short());
  ASSERT_GT(r.queue_tail.size(), 2u);
  EXPECT_NEAR(r.queue_tail[0], 1.0, 1e-9);  // P(Q >= 0) = 1
  for (std::size_t i = 1; i < r.queue_tail.size(); ++i) {
    EXPECT_LE(r.queue_tail[i], r.queue_tail[i - 1] + 1e-12);
  }
  EXPECT_NEAR(r.queue_tail.back(), 0.0, 1e-9);
}

TEST(ShortFlowExperiment, BigBufferMeansNoDrops) {
  const auto r = run_short_flow_experiment(fast_short());
  EXPECT_DOUBLE_EQ(r.drop_probability, 0.0);
}

TEST(ShortFlowExperiment, TinyBufferDropsAndSlowsFlows) {
  auto cfg = fast_short();
  const auto baseline = run_short_flow_experiment(cfg);
  cfg.buffer_packets = 5;
  const auto squeezed = run_short_flow_experiment(cfg);
  EXPECT_GT(squeezed.drop_probability, 0.0);
  EXPECT_GT(squeezed.afct_seconds, baseline.afct_seconds);
}

TEST(MinBufferForAfct, RespectsPenaltyBudget) {
  auto cfg = fast_short();
  const auto baseline = run_short_flow_experiment(cfg);
  const auto min_b = min_buffer_for_afct(cfg, baseline.afct_seconds, 0.2, 2, 300);
  EXPECT_LT(min_b, 300);
  cfg.buffer_packets = min_b;
  const auto at_min = run_short_flow_experiment(cfg);
  EXPECT_LE(at_min.afct_seconds, baseline.afct_seconds * 1.25);  // some noise slack
}

MixedFlowExperimentConfig fast_mixed() {
  MixedFlowExperimentConfig cfg;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.num_long_flows = 5;
  cfg.short_flow_load = 0.2;
  cfg.short_flow_packets = 14;
  cfg.num_short_leaves = 10;
  cfg.buffer_packets = 40;
  cfg.warmup = SimTime::seconds(4);
  cfg.measure = SimTime::seconds(12);
  return cfg;
}

TEST(MixedFlowExperiment, LongFlowsFillWhatShortFlowsLeave) {
  const auto r = run_mixed_flow_experiment(fast_mixed());
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_GT(r.short_flows_completed, 30u);
  // Long flows carry most of the remaining ~80%.
  EXPECT_GT(r.long_flow_throughput_bps, 0.5 * 10e6);
}

TEST(MixedFlowExperiment, UdpShareIsCarried) {
  auto cfg = fast_mixed();
  cfg.udp_load = 0.2;
  const auto r = run_mixed_flow_experiment(cfg);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(MixedFlowExperiment, ParetoSizingRuns) {
  auto cfg = fast_mixed();
  cfg.short_sizing = ShortFlowSizing::kPareto;
  cfg.pareto_max_packets = 200;
  const auto r = run_mixed_flow_experiment(cfg);
  EXPECT_GT(r.short_flows_completed, 10u);
  EXPECT_GT(r.utilization, 0.85);
}

TEST(MixedFlowExperiment, Deterministic) {
  const auto a = run_mixed_flow_experiment(fast_mixed());
  const auto b = run_mixed_flow_experiment(fast_mixed());
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.short_flows_completed, b.short_flows_completed);
}

}  // namespace
}  // namespace rbs::experiment
