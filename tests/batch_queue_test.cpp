// Tests for the exact M[X]/D/1 batch-queue simulation, including the check
// that the paper's effective-bandwidth expression really is an upper bound.
#include "core/batch_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/short_flow_model.hpp"

namespace rbs::core {
namespace {

TEST(BatchQueue, ObservedLoadMatchesConfigured) {
  BatchQueueConfig cfg;
  cfg.load = 0.7;
  cfg.num_batches = 300'000;
  const auto r = run_batch_queue(cfg);
  EXPECT_NEAR(r.observed_load, 0.7, 0.01);
}

TEST(BatchQueue, TailIsAProperSurvivalFunction) {
  BatchQueueConfig cfg;
  cfg.load = 0.8;
  const auto r = run_batch_queue(cfg);
  ASSERT_GE(r.tail.size(), 100u);
  EXPECT_DOUBLE_EQ(r.tail[0], 1.0);
  for (std::size_t b = 1; b < r.tail.size(); ++b) {
    EXPECT_LE(r.tail[b], r.tail[b - 1] + 1e-12);
    EXPECT_GE(r.tail[b], 0.0);
  }
}

TEST(BatchQueue, FormulaOverestimatesTheDecayRate) {
  // The paper's P(Q >= b) expression uses the quadratic (two-moment)
  // approximation of the batch MGF. The approximation's root exceeds the
  // true large-deviations exponent, so against the exact batch queue the
  // formula decays at least as fast — it *under*-predicts deep tails of its
  // own queueing model (dramatically so at low load), and never sits far
  // above them. The paper's sizing still works for the network because ACK
  // clocking spaces a flow's bursts an RTT apart instead of delivering them
  // as one batch, putting the real tail far below both curves — see
  // integration_test.cpp.
  for (const double rho : {0.5, 0.7, 0.85}) {
    for (const std::int64_t flow : {14, 62, 254}) {
      BatchQueueConfig cfg;
      cfg.load = rho;
      cfg.burst_sizes = slow_start_bursts(flow);
      cfg.num_batches = 200'000;
      const auto exact = run_batch_queue(cfg);
      const auto m = burst_moments_for_flow(flow);

      // (a) The formula is never far above the exact tail anywhere.
      // (b) Its decay between two depths is at least the exact decay.
      const std::size_t b1 = 60, b2 = 240;
      for (std::size_t b = 20; b < 300 && b < exact.tail.size(); b += 20) {
        if (exact.tail[b] < 1e-4) break;
        const double formula = queue_tail_probability(rho, m, static_cast<double>(b));
        EXPECT_LT(formula, exact.tail[b] * 3.0)
            << "rho=" << rho << " flow=" << flow << " b=" << b;
      }
      if (exact.tail[b2] >= 1e-4) {
        const double exact_decay = exact.tail[b2] / exact.tail[b1];
        const double formula_decay =
            queue_tail_probability(rho, m, static_cast<double>(b2)) /
            queue_tail_probability(rho, m, static_cast<double>(b1));
        EXPECT_LE(formula_decay, exact_decay * 1.25)
            << "rho=" << rho << " flow=" << flow;
      }
    }
  }
}

TEST(BatchQueue, FormulaIsAccurateNearSaturation) {
  // The quadratic approximation is good exactly where buffers matter: high
  // load. At rho = 0.85 the formula stays within ~3x of the exact tail
  // through the buffer-setting region.
  BatchQueueConfig cfg;
  cfg.load = 0.85;
  cfg.burst_sizes = slow_start_bursts(62);
  cfg.num_batches = 400'000;
  const auto exact = run_batch_queue(cfg);
  const auto m = burst_moments_for_flow(62);
  for (std::size_t b = 100; b <= 300; b += 50) {
    ASSERT_GT(exact.tail[b], 1e-4);
    const double ratio =
        queue_tail_probability(0.85, m, static_cast<double>(b)) / exact.tail[b];
    EXPECT_GT(ratio, 0.3) << "b=" << b;
    EXPECT_LT(ratio, 3.0) << "b=" << b;
  }
}

TEST(BatchQueue, FormulaFactorAtThePaperOperatingPoint) {
  // Pin the gap at the Fig 8 design point: load 0.8, 62-packet flows,
  // b = 162. The exact tail is ~1.6x the formula's 0.025.
  BatchQueueConfig cfg;
  cfg.load = 0.8;
  cfg.burst_sizes = slow_start_bursts(62);
  cfg.num_batches = 400'000;
  const auto exact = run_batch_queue(cfg);
  const auto m = burst_moments_for_flow(62);
  const double formula = queue_tail_probability(0.8, m, 162);
  EXPECT_NEAR(formula, 0.025, 0.001);
  EXPECT_NEAR(exact.tail[162] / formula, 1.6, 0.5);
}

TEST(BatchQueue, UnitBatchesReduceToMD1) {
  // X === 1: the M/D/1 special case. The time-averaged workload equals the
  // virtual waiting time (PASTA): E[V] = lambda*E[S^2]/(2(1-rho)) with
  // deterministic unit service = rho/(2(1-rho)).
  BatchQueueConfig cfg;
  cfg.load = 0.6;
  cfg.burst_sizes = {1};
  cfg.num_batches = 500'000;
  const auto r = run_batch_queue(cfg);
  const double expected = 0.6 / (2.0 * 0.4);
  EXPECT_NEAR(r.mean_workload_packets, expected, expected * 0.05);
}

TEST(BatchQueue, BurstierMixesHaveFatterTails) {
  BatchQueueConfig smooth;
  smooth.load = 0.8;
  smooth.burst_sizes = {1};
  BatchQueueConfig bursty;
  bursty.load = 0.8;
  bursty.burst_sizes = slow_start_bursts(62);
  const auto s = run_batch_queue(smooth);
  const auto b = run_batch_queue(bursty);
  EXPECT_LT(s.tail[60], b.tail[60]);
  EXPECT_LT(s.mean_workload_packets, b.mean_workload_packets);
}

TEST(BatchQueue, DeterministicPerSeed) {
  BatchQueueConfig cfg;
  cfg.num_batches = 50'000;
  const auto a = run_batch_queue(cfg);
  const auto b = run_batch_queue(cfg);
  EXPECT_DOUBLE_EQ(a.mean_workload_packets, b.mean_workload_packets);
  cfg.seed = 2;
  const auto c = run_batch_queue(cfg);
  EXPECT_NE(a.mean_workload_packets, c.mean_workload_packets);
}

}  // namespace
}  // namespace rbs::core
