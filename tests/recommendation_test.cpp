// Unit tests for the one-stop buffer recommendation API.
#include "core/recommendation.hpp"

#include <gtest/gtest.h>

namespace rbs::core {
namespace {

TEST(Recommendation, AbstractHeadline2_5GLink) {
  // "a 2.5Gb/s link carrying 10,000 flows could reduce its buffers by 99%".
  LinkProfile link;
  link.rate = core::BitsPerSec{2.5e9};
  link.mean_rtt_sec = 0.25;
  link.num_long_flows = 10'000;
  const auto rec = recommend_buffer(link);

  EXPECT_EQ(rec.rule_of_thumb_pkts, 78'125);
  EXPECT_NEAR(static_cast<double>(rec.sqrt_rule_pkts) /
                  static_cast<double>(rec.rule_of_thumb_pkts),
              0.01, 0.001);
  EXPECT_GT(rec.buffer_reduction_vs_rule_of_thumb, 0.98);
  EXPECT_GT(rec.predicted_utilization, 0.99);
}

TEST(Recommendation, ShortFlowFloorDominatesWithFewFlows) {
  // With millions of "long flows" claimed, the sqrt rule would shrink below
  // the short-flow floor; the recommendation must respect the floor.
  LinkProfile link;
  link.rate = core::BitsPerSec{1e9};
  link.mean_rtt_sec = 0.1;
  link.num_long_flows = 100'000'000;
  link.load = 0.8;
  const auto rec = recommend_buffer(link);
  EXPECT_EQ(rec.recommended_pkts, rec.short_flow_floor_pkts);
  EXPECT_GT(rec.short_flow_floor_pkts, rec.sqrt_rule_pkts);
}

TEST(Recommendation, SqrtRuleDominatesWithFewFlowsOnFatPipe) {
  LinkProfile link;
  link.rate = core::BitsPerSec{10e9};
  link.mean_rtt_sec = 0.25;
  link.num_long_flows = 100;
  const auto rec = recommend_buffer(link);
  EXPECT_EQ(rec.recommended_pkts, rec.sqrt_rule_pkts);
}

TEST(Recommendation, MemoryFeasibilityIncluded) {
  LinkProfile link;
  link.rate = core::BitsPerSec{10e9};
  link.num_long_flows = 50'000;
  const auto rec = recommend_buffer(link);
  ASSERT_EQ(rec.memory.size(), 3u);
  // ~11 Mbit fits a single SRAM chip and on-chip eDRAM.
  EXPECT_EQ(rec.memory[0].chips_required, 1);
  EXPECT_TRUE(rec.memory[2].single_chip_ok);
}

TEST(Recommendation, DefaultShortMixIsPaperReferenceFlow) {
  LinkProfile link;
  const auto rec = recommend_buffer(link);
  // Floor for load 0.8, 62-packet flows, p = 0.025: ~163 packets.
  EXPECT_NEAR(static_cast<double>(rec.short_flow_floor_pkts), 163.0, 2.0);
}

TEST(Recommendation, CustomMixChangesFloor) {
  LinkProfile link;
  link.short_flow_mix = {{8, 1.0}};  // tiny flows, bursts 2,4,2
  const auto rec_small = recommend_buffer(link);
  link.short_flow_mix = {{1000, 1.0}};  // big slow-start flows
  const auto rec_big = recommend_buffer(link);
  EXPECT_LT(rec_small.short_flow_floor_pkts, rec_big.short_flow_floor_pkts);
}

TEST(Recommendation, ReportContainsKeyNumbers) {
  LinkProfile link;
  link.rate = core::BitsPerSec{2.5e9};
  link.num_long_flows = 10'000;
  const auto rec = recommend_buffer(link);
  const auto report = to_report(link, rec);
  EXPECT_NE(report.find("rule of thumb"), std::string::npos);
  EXPECT_NE(report.find("sqrt rule"), std::string::npos);
  EXPECT_NE(report.find("recommended"), std::string::npos);
  EXPECT_NE(report.find("SRAM"), std::string::npos);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(Recommendation, CcaGuidanceCarriesTheMatrixOrderings) {
  LinkProfile link;
  link.rate = core::BitsPerSec{2.5e9};
  link.num_long_flows = 10'000;
  const auto rec = recommend_buffer(link);

  ASSERT_EQ(rec.cca_guidance.size(), 4u);
  EXPECT_EQ(rec.cca_guidance[0].cca, "newreno");
  EXPECT_EQ(rec.cca_guidance[1].cca, "cubic");
  EXPECT_EQ(rec.cca_guidance[2].cca, "bbr");
  EXPECT_EQ(rec.cca_guidance[3].cca, "dctcp");

  // The headline row is the recommendation itself; CUBIC needs more buffer
  // than NewReno; BBR decouples from sqrt(n) and sits far below the BDP;
  // DCTCP's buffer is twice its marking threshold, well under the BDP.
  EXPECT_EQ(rec.cca_guidance[0].buffer, Packets{rec.recommended_pkts});
  EXPECT_GT(rec.cca_guidance[1].buffer, rec.cca_guidance[0].buffer);
  EXPECT_LT(rec.cca_guidance[2].buffer.count(), rec.rule_of_thumb_pkts / 10);
  EXPECT_GE(rec.cca_guidance[2].buffer.count(), 8);
  EXPECT_LT(rec.cca_guidance[3].buffer.count(), rec.rule_of_thumb_pkts);
  for (const auto& g : rec.cca_guidance) {
    EXPECT_GT(g.buffer.count(), 0) << g.cca;
    EXPECT_FALSE(g.note.empty()) << g.cca;
  }

  const auto report = to_report(link, rec);
  EXPECT_NE(report.find("per-CCA guidance"), std::string::npos);
  for (const char* name : {"newreno", "cubic", "bbr", "dctcp"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(Recommendation, RecommendationNeverBelowEitherRule) {
  for (const std::int64_t n : {10, 1'000, 100'000}) {
    LinkProfile link;
    link.num_long_flows = n;
    const auto rec = recommend_buffer(link);
    EXPECT_GE(rec.recommended_pkts, rec.sqrt_rule_pkts);
    EXPECT_GE(rec.recommended_pkts, rec.short_flow_floor_pkts);
    EXPECT_LE(rec.recommended_pkts, rec.rule_of_thumb_pkts);
  }
}

}  // namespace
}  // namespace rbs::core
