// Unit tests for the fault layer: FaultSchedule (builders, validation, text
// format, random generation), the Link fault hooks, and FaultInjector
// overlap/recovery semantics plus its invariant audit.
#include "core/units.hpp"
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace rbs::fault {
namespace {

using namespace rbs::sim::literals;
using sim::SimTime;

// --- FaultSchedule ---------------------------------------------------------

TEST(FaultScheduleTest, BuildersValidateEagerly) {
  FaultSchedule s;
  EXPECT_THROW(s.link_down("", 1_ms, 1_ms), std::invalid_argument);
  EXPECT_THROW(s.link_down("l", 1_ms, SimTime::zero()), std::invalid_argument);
  EXPECT_THROW(s.link_down("l", SimTime::zero() - 1_ms, 1_ms), std::invalid_argument);
  EXPECT_THROW(s.rate_brownout("l", 1_ms, 1_ms, 0.0), std::invalid_argument);
  EXPECT_THROW(s.rate_brownout("l", 1_ms, 1_ms, -0.5), std::invalid_argument);
  EXPECT_THROW(s.loss_burst("l", 1_ms, 1_ms, 1.5), std::invalid_argument);
  EXPECT_THROW(s.loss_burst("l", 1_ms, 1_ms, -0.1), std::invalid_argument);
  EXPECT_THROW(s.delay_surge("l", 1_ms, 1_ms, SimTime::zero()), std::invalid_argument);
  EXPECT_THROW(s.link_flap("l", 1_ms, 1_ms, 1_ms, 0), std::invalid_argument);
  EXPECT_THROW(s.link_flap("l", 1_ms, 1_ms, SimTime::zero(), 2), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(FaultScheduleTest, FlapExpandsIntoPeriodicDownWindows) {
  FaultSchedule s;
  s.link_flap("bottleneck_fwd", 100_ms, 20_ms, 30_ms, 3);
  ASSERT_EQ(s.size(), 3u);
  for (const auto& e : s.events()) {
    EXPECT_EQ(e.kind, FaultKind::kLinkDown);
    EXPECT_EQ(e.duration, 20_ms);
  }
  EXPECT_EQ(s.events()[0].at, 100_ms);
  EXPECT_EQ(s.events()[1].at, 150_ms);  // 100 + 20 down + 30 up
  EXPECT_EQ(s.events()[2].at, 200_ms);
  EXPECT_EQ(s.horizon(), 220_ms);
}

TEST(FaultScheduleTest, ParsesTextFormatWithComments) {
  std::istringstream in(R"(# a comment line
down bottleneck_fwd 1.5 0.25
flap acc_up_0 2 0.1 0.4 2   # inline comment
rate bottleneck_fwd 0 10 0.5
delay rcv_up_1 3 2 25
loss bottleneck_fwd 4.5 0.5 0.02

freeze bottleneck_fwd 8 1
)");
  const auto s = FaultSchedule::parse(in);
  ASSERT_EQ(s.size(), 7u);  // flap expands to 2
  EXPECT_EQ(s.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(s.events()[0].at, SimTime::milliseconds(1500));
  EXPECT_EQ(s.events()[0].duration, 250_ms);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(s.events()[2].at, SimTime::milliseconds(2500));
  EXPECT_EQ(s.events()[3].kind, FaultKind::kRateDegrade);
  EXPECT_DOUBLE_EQ(s.events()[3].value, 0.5);
  EXPECT_EQ(s.events()[4].kind, FaultKind::kDelayDegrade);
  EXPECT_EQ(s.events()[4].extra, 25_ms);
  EXPECT_EQ(s.events()[5].kind, FaultKind::kLossBurst);
  EXPECT_DOUBLE_EQ(s.events()[5].value, 0.02);
  EXPECT_EQ(s.events()[6].kind, FaultKind::kQueueFreeze);
}

TEST(FaultScheduleTest, ParseErrorsNameTheLine) {
  const auto message_of = [](const std::string& text) {
    std::istringstream in(text);
    try {
      (void)FaultSchedule::parse(in);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string{};
  };
  EXPECT_NE(message_of("wibble l 1 2\n").find("line 1"), std::string::npos);
  EXPECT_NE(message_of("down l 1 2\nrate l 0 1 0\n").find("line 2"), std::string::npos);
  EXPECT_NE(message_of("down l 1\n").find("line 1"), std::string::npos);       // missing field
  EXPECT_NE(message_of("down l 1 2 extra\n").find("trailing"), std::string::npos);
  EXPECT_NE(message_of("loss l 1 2 1.5\n").find("line 1"), std::string::npos);  // p out of range
  EXPECT_NE(message_of("down l -1 2\n").find("line 1"), std::string::npos);
}

TEST(FaultScheduleTest, TextRoundTrips) {
  FaultSchedule s;
  s.link_down("a", 1500_ms, 250_ms)
      .rate_brownout("b", 2_sec, 3_sec, 0.25)
      .delay_surge("c", 1_sec, 2_sec, 40_ms)
      .loss_burst("d", 500_ms, 100_ms, 0.125)
      .queue_freeze("e", 4_sec, 1_sec);
  std::istringstream in(s.to_text());
  const auto reparsed = FaultSchedule::parse(in);
  ASSERT_EQ(reparsed.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(reparsed.events()[i].kind, s.events()[i].kind) << i;
    EXPECT_EQ(reparsed.events()[i].link, s.events()[i].link) << i;
    EXPECT_EQ(reparsed.events()[i].at, s.events()[i].at) << i;
    EXPECT_EQ(reparsed.events()[i].duration, s.events()[i].duration) << i;
    EXPECT_DOUBLE_EQ(reparsed.events()[i].value, s.events()[i].value) << i;
    EXPECT_EQ(reparsed.events()[i].extra, s.events()[i].extra) << i;
  }
}

TEST(FaultScheduleTest, ParseFileMissingThrows) {
  EXPECT_THROW((void)FaultSchedule::parse_file("/nonexistent/faults.txt"),
               std::invalid_argument);
}

TEST(FaultScheduleTest, RandomIsSeedDeterministicAndInBounds) {
  RandomFaultConfig cfg;
  cfg.links = {"bottleneck_fwd", "acc_up_0"};
  cfg.horizon_begin = 1_sec;
  cfg.horizon_end = 5_sec;
  cfg.num_events = 32;
  cfg.min_duration = 1_ms;
  cfg.max_duration = 500_ms;

  sim::Rng rng_a{42};
  sim::Rng rng_b{42};
  const auto a = FaultSchedule::random(rng_a, cfg);
  const auto b = FaultSchedule::random(rng_b, cfg);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a.to_text(), b.to_text());
  a.validate();
  for (const auto& e : a.events()) {
    EXPECT_GE(e.at, cfg.horizon_begin);
    EXPECT_LT(e.at, cfg.horizon_end);
    EXPECT_GE(e.duration, cfg.min_duration);
    EXPECT_LE(e.duration, cfg.max_duration);
  }
  sim::Rng rng_c{43};
  EXPECT_NE(FaultSchedule::random(rng_c, cfg).to_text(), a.to_text());
}

// --- Link fault hooks ------------------------------------------------------

/// Records every delivered packet with its arrival time.
class RecordingSink final : public net::PacketSink {
 public:
  explicit RecordingSink(sim::Simulation& sim) : sim_{sim} {}
  void receive(const net::Packet& p) override { arrivals_.push_back({sim_.now(), p}); }

  struct Arrival {
    SimTime time;
    net::Packet packet;
  };
  std::vector<Arrival> arrivals_;

 private:
  sim::Simulation& sim_;
};

net::Packet make_packet(std::int64_t seq, std::int32_t bytes = 1000) {
  net::Packet p;
  p.flow = 1;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

/// 1 Mb/s + 5 ms: a 1000-byte packet serializes in 8 ms, arrives at 13 ms.
class FaultLinkTest : public ::testing::Test {
 protected:
  FaultLinkTest()
      : sink_{sim_},
        link_{sim_, "l", net::Link::Config{core::BitsPerSec{1e6}, 5_ms},
              std::make_unique<net::DropTailQueue>(4), sink_} {}

  sim::Simulation sim_{1};
  RecordingSink sink_;
  net::Link link_;
};

TEST_F(FaultLinkTest, DownDropsInServiceQueuedAndArrivingPackets) {
  // Three packets: one in service, two queued.
  for (int i = 0; i < 3; ++i) link_.receive(make_packet(i));
  sim_.at(4_ms, [this] { link_.fault_down(); });
  sim_.at(10_ms, [this] { link_.receive(make_packet(99)); });  // offered while down
  sim_.run();
  EXPECT_TRUE(sink_.arrivals_.empty());
  EXPECT_EQ(link_.fault_stats().inflight_drops, 1u);  // the in-service packet
  EXPECT_EQ(link_.fault_stats().flushed_packets, 2u);
  EXPECT_EQ(link_.fault_stats().down_drops, 1u);
  EXPECT_EQ(link_.queue().size_packets(), 0);
  EXPECT_FALSE(link_.busy());
  // Queue conservation survives the flush.
  check::AuditReport report;
  link_.queue().audit(report);
  EXPECT_TRUE(report.clean()) << report.messages().front();
}

TEST_F(FaultLinkTest, DownStrandsPacketsAlreadyOnTheWire) {
  link_.receive(make_packet(0));  // serialized by 8 ms, propagating until 13 ms
  sim_.at(10_ms, [this] { link_.fault_down(); });
  sim_.run();
  EXPECT_TRUE(sink_.arrivals_.empty());
  EXPECT_EQ(link_.fault_stats().inflight_drops, 1u);
}

TEST_F(FaultLinkTest, TrafficResumesAfterRecovery) {
  sim_.at(1_ms, [this] { link_.fault_down(); });
  sim_.at(2_ms, [this] { link_.receive(make_packet(0)); });  // lost
  sim_.at(20_ms, [this] { link_.fault_up(); });
  sim_.at(25_ms, [this] { link_.receive(make_packet(1)); });
  sim_.run();
  ASSERT_EQ(sink_.arrivals_.size(), 1u);
  EXPECT_EQ(sink_.arrivals_[0].packet.seq, 1);
  EXPECT_EQ(sink_.arrivals_[0].time, 38_ms);  // 25 + 8 serialization + 5 propagation
}

TEST_F(FaultLinkTest, RateFactorSlowsSerialization) {
  link_.fault_set_rate_factor(0.5);  // 1 Mb/s -> 500 kb/s: 16 ms per packet
  link_.receive(make_packet(0));
  sim_.run();
  ASSERT_EQ(sink_.arrivals_.size(), 1u);
  EXPECT_EQ(sink_.arrivals_[0].time, 21_ms);  // 16 + 5
  link_.fault_set_rate_factor(1.0);
  EXPECT_DOUBLE_EQ(link_.fault_rate_factor(), 1.0);
  EXPECT_THROW(link_.fault_set_rate_factor(0.0), std::invalid_argument);
  EXPECT_THROW(link_.fault_set_rate_factor(-1.0), std::invalid_argument);
}

TEST_F(FaultLinkTest, ExtraPropagationDelaysDelivery) {
  link_.fault_set_extra_propagation(7_ms);
  link_.receive(make_packet(0));
  sim_.run();
  ASSERT_EQ(sink_.arrivals_.size(), 1u);
  EXPECT_EQ(sink_.arrivals_[0].time, 20_ms);  // 8 + 5 + 7
  EXPECT_THROW(link_.fault_set_extra_propagation(SimTime::zero() - 1_ms),
               std::invalid_argument);
}

TEST_F(FaultLinkTest, CertainLossDropsEveryOfferedPacket) {
  sim::Rng rng{7};
  link_.fault_set_loss(1.0, &rng);
  for (int i = 0; i < 5; ++i) link_.receive(make_packet(i));
  sim_.run();
  EXPECT_TRUE(sink_.arrivals_.empty());
  EXPECT_EQ(link_.fault_stats().loss_drops, 5u);
  link_.fault_set_loss(0.0, nullptr);
  link_.receive(make_packet(9));
  sim_.run();
  EXPECT_EQ(sink_.arrivals_.size(), 1u);
  EXPECT_THROW(link_.fault_set_loss(2.0, &rng), std::invalid_argument);
  EXPECT_THROW(link_.fault_set_loss(0.5, nullptr), std::invalid_argument);
}

TEST_F(FaultLinkTest, FreezeStallsServiceUntilUnfrozen) {
  link_.receive(make_packet(0));  // in service; finishes normally at 8 ms
  link_.receive(make_packet(1));  // queued behind it
  sim_.at(2_ms, [this] { link_.fault_set_frozen(true); });
  sim_.at(50_ms, [this] { link_.fault_set_frozen(false); });
  sim_.run();
  ASSERT_EQ(sink_.arrivals_.size(), 2u);
  EXPECT_EQ(sink_.arrivals_[0].time, 13_ms);  // in-service packet unaffected
  EXPECT_EQ(sink_.arrivals_[1].time, 63_ms);  // dequeued at 50, +8 +5
}

// --- FaultInjector ---------------------------------------------------------

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest()
      : sink_{sim_},
        link_{sim_, "bottleneck_fwd", net::Link::Config{core::BitsPerSec{1e6}, 5_ms},
              std::make_unique<net::DropTailQueue>(4), sink_},
        injector_{sim_} {
    injector_.attach(link_);
  }

  sim::Simulation sim_{1};
  RecordingSink sink_;
  net::Link link_;
  FaultInjector injector_;
};

TEST_F(InjectorTest, ArmRejectsUnknownLinksAndDoubleAttach) {
  FaultSchedule s;
  s.link_down("no_such_link", 1_ms, 1_ms);
  EXPECT_THROW(injector_.arm(s), std::invalid_argument);
  EXPECT_THROW(injector_.attach(link_), std::invalid_argument);
  EXPECT_EQ(injector_.attached_links(), 1u);
}

TEST_F(InjectorTest, OverlappingDownWindowsKeepLinkDownUntilTheLastClears) {
  FaultSchedule s;
  s.link_down("bottleneck_fwd", 5_ms, 10_ms);   // [5, 15)
  s.link_down("bottleneck_fwd", 10_ms, 15_ms);  // [10, 25)
  injector_.arm(s);
  sim_.at(16_ms, [this] { link_.receive(make_packet(0)); });  // first window over, still down
  sim_.at(30_ms, [this] { link_.receive(make_packet(1)); });
  sim_.run();
  ASSERT_EQ(sink_.arrivals_.size(), 1u);
  EXPECT_EQ(sink_.arrivals_[0].packet.seq, 1);
  EXPECT_EQ(link_.fault_stats().down_drops, 1u);
  EXPECT_FALSE(link_.fault_is_down());
  EXPECT_EQ(injector_.totals().events_armed, 2u);
  EXPECT_EQ(injector_.totals().onsets_fired, 2u);
  EXPECT_EQ(injector_.totals().recoveries_fired, 2u);
}

TEST_F(InjectorTest, OverlappingRateWindowsComposeAndRestoreExactly) {
  FaultSchedule s;
  s.rate_brownout("bottleneck_fwd", SimTime::zero(), 10_ms, 0.5);
  s.rate_brownout("bottleneck_fwd", 5_ms, 10_ms, 0.4);
  injector_.arm(s);
  sim_.at(7_ms, [this] { EXPECT_DOUBLE_EQ(link_.fault_rate_factor(), 0.2); });
  sim_.at(12_ms, [this] { EXPECT_DOUBLE_EQ(link_.fault_rate_factor(), 0.4); });
  sim_.run();
  EXPECT_DOUBLE_EQ(link_.fault_rate_factor(), 1.0);  // bitwise restore
}

TEST_F(InjectorTest, EmitsFaultMetricsFamily) {
  FaultSchedule s;
  s.link_down("bottleneck_fwd", 1_ms, 5_ms);
  injector_.arm(s);
  sim_.at(2_ms, [this] { link_.receive(make_packet(0)); });
  sim_.run();
  const auto json = sim_.metrics().snapshot().to_json();
  EXPECT_NE(json.find("faults.events"), std::string::npos);
  EXPECT_NE(json.find("faults.drops"), std::string::npos);
}

TEST_F(InjectorTest, AuditIsCleanThroughAndAfterTheSchedule) {
  FaultSchedule s;
  s.link_down("bottleneck_fwd", 1_ms, 5_ms)
      .rate_brownout("bottleneck_fwd", 2_ms, 5_ms, 0.5)
      .loss_burst("bottleneck_fwd", 3_ms, 5_ms, 0.5)
      .queue_freeze("bottleneck_fwd", 4_ms, 5_ms)
      .delay_surge("bottleneck_fwd", 5_ms, 5_ms, 1_ms);
  injector_.arm(s);
  sim_.at(6_ms, [this] {
    check::AuditReport mid;
    injector_.audit(mid);
    EXPECT_TRUE(mid.clean()) << mid.messages().front();
  });
  sim_.run();
  check::AuditReport report;
  injector_.audit(report);
  EXPECT_TRUE(report.clean()) << report.messages().front();
  EXPECT_FALSE(link_.fault_is_down());
  EXPECT_FALSE(link_.fault_is_frozen());
  EXPECT_DOUBLE_EQ(link_.fault_loss_probability(), 0.0);
  EXPECT_EQ(link_.fault_extra_propagation(), SimTime::zero());
}

TEST_F(InjectorTest, AuditFlagsStateChangedBehindItsBack) {
  link_.fault_down();  // not driven by the injector
  check::AuditReport report;
  injector_.audit(report);
  EXPECT_FALSE(report.clean());
}

}  // namespace
}  // namespace rbs::fault
