// Tests for the parallel sweep runner: deterministic ordering, bitwise
// parallel-vs-serial equivalence of experiment results, exception
// propagation, and thread-count selection.
#include "experiment/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "experiment/long_flow_experiment.hpp"
#include "experiment/short_flow_experiment.hpp"

namespace rbs::experiment {
namespace {

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  SweepRunner runner{4};
  const auto out = runner.map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, RunsEveryPointExactlyOnce) {
  SweepRunner runner{3};
  std::vector<std::atomic<int>> hits(257);
  runner.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, EmptySweepIsANoOp) {
  SweepRunner runner{2};
  bool touched = false;
  runner.run_indexed(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(SweepRunner, SingleThreadRunsSeriallyInOrder) {
  SweepRunner runner{1};
  EXPECT_EQ(runner.threads(), 1);
  std::vector<std::size_t> order;
  runner.run_indexed(10, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(SweepRunner, PropagatesFirstException) {
  SweepRunner runner{2};
  EXPECT_THROW(runner.run_indexed(50,
                                  [&](std::size_t i) {
                                    if (i == 7) throw std::runtime_error{"boom"};
                                  }),
               std::runtime_error);
  // The pool must remain usable after a failed batch.
  const auto out = runner.map<int>(8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out.size(), 8u);
}

TEST(SweepRunner, ReusableAcrossBatches) {
  SweepRunner runner{2};
  for (int batch = 0; batch < 20; ++batch) {
    const auto out =
        runner.map<int>(16, [batch](std::size_t i) { return batch * 100 + static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], batch * 100 + static_cast<int>(i));
    }
  }
}

TEST(SweepRunner, CheckedModeVerifiesExactlyOnceExecution) {
  SweepRunner runner{3, /*checked=*/true};
  EXPECT_TRUE(runner.checked());
  std::vector<std::atomic<int>> hits(101);
  runner.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Checked batches still propagate point exceptions and stay reusable.
  EXPECT_THROW(runner.run_indexed(10,
                                  [](std::size_t i) {
                                    if (i == 3) throw std::runtime_error{"boom"};
                                  }),
               std::runtime_error);
  const auto out = runner.map<int>(8, [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(out.size(), 8u);
}

TEST(SweepRunner, DefaultThreadsHonorsEnvVar) {
  ::setenv("RBS_THREADS", "3", 1);
  EXPECT_EQ(default_sweep_threads(), 3);
  ::unsetenv("RBS_THREADS");
  EXPECT_GE(default_sweep_threads(), 1);
}

// The determinism contract: a sweep point computes bitwise the same result
// whether it runs serially or on a pool, because every point owns its
// Simulation (scheduler + forked RNG) and nothing in src/ has mutable
// global state.
TEST(SweepRunner, ParallelLongFlowSweepIsBitwiseIdenticalToSerial) {
  const std::vector<std::int64_t> buffers{10, 25, 50, 100};
  auto run_point = [&](std::size_t i) {
    LongFlowExperimentConfig cfg;
    cfg.num_flows = 8;
    cfg.buffer_packets = buffers[i];
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(2);
    cfg.seed = 42 + i;
    return run_long_flow_experiment(cfg);
  };

  std::vector<LongFlowExperimentResult> serial;
  for (std::size_t i = 0; i < buffers.size(); ++i) serial.push_back(run_point(i));

  SweepRunner runner{4};
  const auto parallel = runner.map<LongFlowExperimentResult>(buffers.size(), run_point);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Bitwise comparison of every scalar metric — no tolerance.
    EXPECT_EQ(std::memcmp(&serial[i].utilization, &parallel[i].utilization, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&serial[i].loss_rate, &parallel[i].loss_rate, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&serial[i].mean_queue_packets, &parallel[i].mean_queue_packets,
                          sizeof(double)),
              0);
    EXPECT_EQ(serial[i].bottleneck_drops, parallel[i].bottleneck_drops);
    EXPECT_EQ(serial[i].tcp_stats.data_packets_sent, parallel[i].tcp_stats.data_packets_sent);
    EXPECT_EQ(serial[i].tcp_stats.retransmissions, parallel[i].tcp_stats.retransmissions);
    EXPECT_EQ(serial[i].tcp_stats.timeouts, parallel[i].tcp_stats.timeouts);
  }
}

TEST(SweepRunner, ParallelShortFlowSweepIsBitwiseIdenticalToSerial) {
  const std::vector<std::int64_t> buffers{20, 60};
  auto run_point = [&](std::size_t i) {
    ShortFlowExperimentConfig cfg;
    cfg.buffer_packets = buffers[i];
    cfg.num_leaves = 10;
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(3);
    cfg.seed = 7;
    return run_short_flow_experiment(cfg);
  };

  std::vector<ShortFlowExperimentResult> serial;
  for (std::size_t i = 0; i < buffers.size(); ++i) serial.push_back(run_point(i));
  const auto parallel = parallel_sweep<ShortFlowExperimentResult>(buffers.size(), run_point, 2);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(std::memcmp(&serial[i].afct_seconds, &parallel[i].afct_seconds, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&serial[i].drop_probability, &parallel[i].drop_probability,
                          sizeof(double)),
              0);
    EXPECT_EQ(serial[i].flows_completed, parallel[i].flows_completed);
    EXPECT_EQ(serial[i].queue_tail, parallel[i].queue_tail);
  }
}

std::uint64_t total_points(const std::vector<WorkerDispatchStats>& stats) {
  std::uint64_t sum = 0;
  for (const WorkerDispatchStats& s : stats) sum += s.points;
  return sum;
}

std::uint64_t total_chunks(const std::vector<WorkerDispatchStats>& stats) {
  std::uint64_t sum = 0;
  for (const WorkerDispatchStats& s : stats) sum += s.chunks;
  return sum;
}

TEST(SweepRunnerDispatchStats, OneEntryPerWorker) {
  for (int threads : {1, 2, 4}) {
    SweepRunner runner{threads};
    EXPECT_EQ(runner.dispatch_stats().size(), static_cast<std::size_t>(runner.threads()));
  }
}

TEST(SweepRunnerDispatchStats, PointsSumToBatchSizeAcrossWorkerCounts) {
  constexpr std::size_t kPoints = 513;
  for (int threads : {1, 2, 4}) {
    SweepRunner runner{threads};
    std::atomic<std::size_t> ran{0};
    runner.run_indexed(kPoints, [&](std::size_t) { ++ran; });

    const auto stats = runner.dispatch_stats();
    EXPECT_EQ(ran.load(), kPoints);
    EXPECT_EQ(total_points(stats), kPoints) << "threads=" << threads;
    // Every claimed chunk ran at least one point, and no worker can claim
    // more chunks than it ran points.
    EXPECT_GE(total_chunks(stats), 1u);
    EXPECT_LE(total_chunks(stats), total_points(stats));
  }
}

TEST(SweepRunnerDispatchStats, CountersAccumulateAcrossRepeatedSweeps) {
  SweepRunner runner{2};
  constexpr std::size_t kPoints = 100;
  constexpr int kSweeps = 5;
  std::uint64_t prev_points = 0;
  std::uint64_t prev_chunks = 0;
  for (int sweep = 1; sweep <= kSweeps; ++sweep) {
    runner.run_indexed(kPoints, [](std::size_t) {});
    const auto stats = runner.dispatch_stats();
    ASSERT_EQ(stats.size(), static_cast<std::size_t>(runner.threads()));
    // Cumulative since construction: each batch adds exactly its size.
    EXPECT_EQ(total_points(stats), kPoints * static_cast<std::uint64_t>(sweep));
    EXPECT_GT(total_points(stats), prev_points);
    EXPECT_GE(total_chunks(stats), prev_chunks);
    prev_points = total_points(stats);
    prev_chunks = total_chunks(stats);
  }
}

TEST(SweepRunnerDispatchStats, SerialRunnerAttributesEverythingToWorkerZero) {
  SweepRunner runner{1};
  runner.run_indexed(64, [](std::size_t) {});
  const auto stats = runner.dispatch_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].points, 64u);
}

}  // namespace
}  // namespace rbs::experiment
