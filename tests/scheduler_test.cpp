// Unit tests for the discrete-event scheduler: ordering, determinism,
// cancellation, and run-until semantics.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rbs::sim {
namespace {

using namespace rbs::sim::literals;

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30_ms, [&] { order.push_back(3); });
  sched.schedule_at(10_ms, [&] { order.push_back(1); });
  sched.schedule_at(20_ms, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  SimTime seen;
  sched.schedule_at(42_ms, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen, 42_ms);
  EXPECT_EQ(sched.now(), 42_ms);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  SimTime seen;
  sched.schedule_at(10_ms, [&] {
    sched.schedule_after(5_ms, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 15_ms);
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sched.schedule_after(1_ms, recurse);
  };
  sched.schedule_at(SimTime::zero(), recurse);
  sched.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.now(), 99_ms);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto h = sched.schedule_at(10_ms, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler sched;
  auto h = sched.schedule_at(1_ms, [] {});
  sched.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
  h.cancel();
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(Scheduler, RunUntilExecutesOnlyDueEvents) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10_ms, [&] { order.push_back(1); });
  sched.schedule_at(20_ms, [&] { order.push_back(2); });
  sched.schedule_at(30_ms, [&] { order.push_back(3); });

  const bool drained = sched.run_until(20_ms);
  EXPECT_FALSE(drained);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 20_ms);

  EXPECT_TRUE(sched.run_until(100_ms));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 100_ms);
}

TEST(Scheduler, RunUntilWithEmptyQueueAdvancesClock) {
  Scheduler sched;
  EXPECT_TRUE(sched.run_until(77_ms));
  EXPECT_EQ(sched.now(), 77_ms);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler sched;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(SimTime::milliseconds(i), [&] {
      if (++count == 3) sched.stop();
    });
  }
  sched.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.pending_events(), 7u);
}

TEST(Scheduler, ExecutedEventsCountsOnlyFired) {
  Scheduler sched;
  sched.schedule_at(1_ms, [] {});
  auto h = sched.schedule_at(2_ms, [] {});
  h.cancel();
  sched.schedule_at(3_ms, [] {});
  sched.run();
  EXPECT_EQ(sched.executed_events(), 2u);
}

TEST(Scheduler, TimerRestartPattern) {
  // The TCP usage pattern: repeatedly cancel + reschedule a timer.
  Scheduler sched;
  int fired = 0;
  Scheduler::EventHandle timer;
  for (int i = 0; i < 50; ++i) {
    timer.cancel();
    timer = sched.schedule_at(SimTime::milliseconds(100 + i), [&] { ++fired; });
  }
  sched.run();
  EXPECT_EQ(fired, 1);  // only the last survives
  EXPECT_EQ(sched.now(), SimTime::milliseconds(149));
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler sched;
  SimTime last = SimTime::zero();
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    // Pseudo-shuffled times.
    const auto t = SimTime::microseconds((i * 7919) % 10'000);
    sched.schedule_at(t, [&, t] {
      if (sched.now() < last) monotone = false;
      last = sched.now();
    });
  }
  sched.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sched.executed_events(), 10'000u);
}

}  // namespace
}  // namespace rbs::sim
