// Unit tests for the discrete-event scheduler: ordering, determinism,
// cancellation, and run-until semantics.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace rbs::sim {
namespace {

using namespace rbs::sim::literals;

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30_ms, [&] { order.push_back(3); });
  sched.schedule_at(10_ms, [&] { order.push_back(1); });
  sched.schedule_at(20_ms, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler sched;
  SimTime seen;
  sched.schedule_at(42_ms, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen, 42_ms);
  EXPECT_EQ(sched.now(), 42_ms);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler sched;
  SimTime seen;
  sched.schedule_at(10_ms, [&] {
    sched.schedule_after(5_ms, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 15_ms);
}

TEST(Scheduler, EventsScheduledDuringRunAreExecuted) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sched.schedule_after(1_ms, recurse);
  };
  sched.schedule_at(SimTime::zero(), recurse);
  sched.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.now(), 99_ms);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto h = sched.schedule_at(10_ms, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler sched;
  auto h = sched.schedule_at(1_ms, [] {});
  sched.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
  h.cancel();
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler::EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

TEST(Scheduler, RunUntilExecutesOnlyDueEvents) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10_ms, [&] { order.push_back(1); });
  sched.schedule_at(20_ms, [&] { order.push_back(2); });
  sched.schedule_at(30_ms, [&] { order.push_back(3); });

  const bool drained = sched.run_until(20_ms);
  EXPECT_FALSE(drained);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 20_ms);

  EXPECT_TRUE(sched.run_until(100_ms));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 100_ms);
}

TEST(Scheduler, RunUntilWithEmptyQueueAdvancesClock) {
  Scheduler sched;
  EXPECT_TRUE(sched.run_until(77_ms));
  EXPECT_EQ(sched.now(), 77_ms);
}

TEST(Scheduler, StopHaltsRun) {
  Scheduler sched;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(SimTime::milliseconds(i), [&] {
      if (++count == 3) sched.stop();
    });
  }
  sched.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.pending_events(), 7u);
}

TEST(Scheduler, ExecutedEventsCountsOnlyFired) {
  Scheduler sched;
  sched.schedule_at(1_ms, [] {});
  auto h = sched.schedule_at(2_ms, [] {});
  h.cancel();
  sched.schedule_at(3_ms, [] {});
  sched.run();
  EXPECT_EQ(sched.executed_events(), 2u);
}

TEST(Scheduler, TimerRestartPattern) {
  // The TCP usage pattern: repeatedly cancel + reschedule a timer.
  Scheduler sched;
  int fired = 0;
  Scheduler::EventHandle timer;
  for (int i = 0; i < 50; ++i) {
    timer.cancel();
    timer = sched.schedule_at(SimTime::milliseconds(100 + i), [&] { ++fired; });
  }
  sched.run();
  EXPECT_EQ(fired, 1);  // only the last survives
  EXPECT_EQ(sched.now(), SimTime::milliseconds(149));
}

TEST(Scheduler, SchedulePastClampsToNow) {
  // Policy: a target time earlier than now() is clamped to now() — the
  // event still fires on the current tick, in FIFO order with other events
  // scheduled for now().
  Scheduler sched;
  std::vector<int> order;
  SimTime seen;
  sched.schedule_at(10_ms, [&] {
    order.push_back(1);
    sched.schedule_at(3_ms, [&] {  // in the past: clamps to 10 ms
      order.push_back(2);
      seen = sched.now();
    });
    sched.schedule_at(10_ms, [&] { order.push_back(3); });  // scheduled later: fires later
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(seen, 10_ms);
  EXPECT_EQ(sched.now(), 10_ms);
}

TEST(Scheduler, ScheduleAfterNegativeDelayClampsToNow) {
  Scheduler sched;
  bool fired = false;
  sched.schedule_at(5_ms, [&] {
    sched.schedule_after(SimTime::zero() - 7_ms, [&] { fired = true; });
  });
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), 5_ms);
}

TEST(Scheduler, StaleHandleDoesNotCancelRecycledSlot) {
  // After an event fires, its pool slot is recycled for new events; a stale
  // handle (same slot, older generation) must be inert against the new one.
  Scheduler sched;
  auto stale = sched.schedule_at(1_ms, [] {});
  sched.run();
  EXPECT_FALSE(stale.pending());

  // Exercise slot reuse heavily so at least one new event lands in the
  // stale handle's slot.
  int fired = 0;
  std::vector<Scheduler::EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sched.schedule_at(2_ms, [&] { ++fired; }));
  }
  stale.cancel();  // must not disturb any of the new events
  EXPECT_FALSE(stale.pending());
  sched.run();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, CancelDuringOwnCallbackIsNoOp) {
  Scheduler sched;
  Scheduler::EventHandle self;
  int fired = 0;
  self = sched.schedule_at(1_ms, [&] {
    ++fired;
    self.cancel();  // already firing: must be a no-op, not a double free
    EXPECT_FALSE(self.pending());
  });
  sched.run();
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PendingEventsCountsOnlyLiveEvents) {
  // pending_events() excludes cancelled-but-unreaped queue entries.
  Scheduler sched;
  std::vector<Scheduler::EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sched.schedule_at(SimTime::milliseconds(1 + i), [] {}));
  }
  EXPECT_EQ(sched.pending_events(), 10u);
  for (int i = 0; i < 4; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(sched.pending_events(), 6u);
  sched.run();
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.executed_events(), 6u);
}

TEST(Scheduler, DeterministicEventTraceAcrossRuns) {
  // Same seed ⇒ identical (time, id) event trace, including FIFO tie-breaks
  // and a cancellation pattern driven by the seeded RNG.
  auto trace_for_seed = [](std::uint64_t seed) {
    Scheduler sched;
    Rng rng{seed};
    std::vector<std::pair<std::int64_t, int>> trace;
    std::vector<Scheduler::EventHandle> handles;
    for (int i = 0; i < 2'000; ++i) {
      const auto t = SimTime::microseconds(rng.uniform_int(0, 500));
      handles.push_back(sched.schedule_at(t, [&trace, &sched, i] {
        trace.emplace_back(sched.now().ps(), i);
      }));
    }
    for (int i = 0; i < 2'000; ++i) {
      if (rng.bernoulli(0.3)) handles[static_cast<std::size_t>(i)].cancel();
    }
    sched.run();
    return trace;
  };
  const auto a = trace_for_seed(7);
  const auto b = trace_for_seed(7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  // Sanity: FIFO tie-break — equal times fire in schedule (id) order.
  for (std::size_t i = 1; i < a.size(); ++i) {
    ASSERT_LE(a[i - 1].first, a[i].first);
    if (a[i - 1].first == a[i].first) {
      ASSERT_LT(a[i - 1].second, a[i].second);
    }
  }
}

TEST(Scheduler, PoolReuseKeepsMemoryBounded) {
  // 1M schedule/cancel cycles (the TCP timer pattern) must recycle slots
  // instead of growing the pool or the queue: a handful of live timers
  // should never allocate more than a few slabs.
  Scheduler sched;
  Scheduler::EventHandle timer;
  for (int i = 0; i < 1'000'000; ++i) {
    timer.cancel();
    timer = sched.schedule_at(SimTime::microseconds(100 + i), [] {});
  }
  // One live timer; cancelled entries must have been reaped along the way.
  EXPECT_EQ(sched.pending_events(), 1u);
  EXPECT_LT(sched.queue_entries(), 1'000u);
  EXPECT_LT(sched.pool_capacity(), 10'000u);
  sched.run();
  EXPECT_EQ(sched.executed_events(), 1u);
}

TEST(Scheduler, OversizedCaptureFallbackWorks) {
  // Captures beyond the slot's inline storage take the heap fallback and
  // must still fire, cancel, and destruct correctly.
  Scheduler sched;
  struct Big {
    std::array<std::uint64_t, 16> payload;  // 128 bytes, > inline storage
  };
  Big big{};
  big.payload[0] = 41;
  std::uint64_t seen = 0;
  sched.schedule_at(1_ms, [big, &seen] { seen = big.payload[0] + 1; });
  auto cancelled = sched.schedule_at(2_ms, [big, &seen] { seen = big.payload[0] + 100; });
  cancelled.cancel();
  sched.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Scheduler, OversizedCaptureChurnReusesBigSlots) {
  // Callbacks whose captures exceed the inline slot budget borrow big slots
  // from the pool; steady-state churn must recycle them instead of growing
  // the big slabs (the pre-pool behavior was a heap allocation per event).
  Scheduler sched;
  struct Fat {
    Scheduler* sched;
    std::uint64_t payload[9];  // 80 bytes of capture: inline budget is 40
    void operator()() const {
      if (payload[0] < 100'000) {
        Fat next = *this;
        ++next.payload[0];
        sched->schedule_after(SimTime::microseconds(3), next);
      }
    }
  };
  for (int i = 0; i < 64; ++i) {
    sched.schedule_after(SimTime::microseconds(i), Fat{&sched, {0}});
  }
  sched.run();
  EXPECT_GT(sched.executed_events(), 100'000u);
  EXPECT_LE(sched.pool_big_capacity(), 512u)
      << "big-slot slabs grew under steady churn: recycling is broken";
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler sched;
  SimTime last = SimTime::zero();
  bool monotone = true;
  for (int i = 0; i < 10'000; ++i) {
    // Pseudo-shuffled times.
    const auto t = SimTime::microseconds((i * 7919) % 10'000);
    sched.schedule_at(t, [&, t] {
      if (sched.now() < last) monotone = false;
      last = sched.now();
    });
  }
  sched.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sched.executed_events(), 10'000u);
}

}  // namespace
}  // namespace rbs::sim
