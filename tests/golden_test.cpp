// Golden regression tests: pin the headline reproduction numbers for fixed
// seeds, so any change to engine, TCP, or measurement semantics that would
// silently shift EXPERIMENTS.md shows up as a test failure.
//
// Tolerances are loose enough to survive floating-point library differences
// (exp/log inside the RNG transforms) but tight enough to catch behavioral
// drift. If a deliberate protocol change moves these numbers, update both
// the goldens and EXPERIMENTS.md in the same commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/short_flow_model.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/scenarios.hpp"
#include "experiment/short_flow_experiment.hpp"

namespace rbs {
namespace {

using sim::SimTime;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(Golden, SingleFlowRuleOfThumbUtilization) {
  // EXPERIMENTS.md, Fig 3 row: 100.00% at B = BDP.
  auto cfg = experiment::scenarios::single_flow(115);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 1.000, 0.002);
}

TEST(Golden, SingleFlowUnderbufferedUtilization) {
  // EXPERIMENTS.md, Fig 4 row: ~89% at B = BDP/4.
  auto cfg = experiment::scenarios::single_flow(28);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.891, 0.015);
}

TEST(Golden, Oc3HundredFlowsAtSqrtRule) {
  // EXPERIMENTS.md, Fig 10, n=100, 1.0x row: 97.3%.
  auto cfg = experiment::scenarios::oc3_lab(100, 155);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.973, 0.01);
}

TEST(Golden, Oc3HundredFlowsAtHalfRule) {
  // EXPERIMENTS.md, Fig 10, n=100, 0.5x row: 89.3%.
  auto cfg = experiment::scenarios::oc3_lab(100, 78);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.893, 0.015);
}

TEST(Golden, Oc3FourHundredFlowsAtRule) {
  // EXPERIMENTS.md, Fig 10, n=400, 1.0x row: 99.7%.
  auto cfg = experiment::scenarios::oc3_lab(400, 78);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.997, 0.005);
}

TEST(Golden, ShortFlowBaselineAfctAt80Mbps) {
  // EXPERIMENTS.md, Fig 8: 393 ms baseline AFCT at 80 Mb/s, load 0.8.
  auto cfg = experiment::scenarios::fig8_short_flows(core::BitsPerSec{80e6}, 4000);
  cfg.measure = SimTime::seconds(25);
  const auto r = run_short_flow_experiment(cfg);
  EXPECT_NEAR(r.afct_seconds, 0.393, 0.02);
  EXPECT_NEAR(r.utilization, 0.80, 0.03);
}

// --- No-fault equivalence -------------------------------------------------
//
// The fault layer's zero-cost contract: an experiment configured with an
// empty FaultSchedule must be BITWISE identical to the same run before the
// fault subsystem existed. The constants below (hexfloat, so they are exact)
// were captured at the commit immediately preceding the fault layer. Any
// drift here means the injector perturbed the event order, consumed RNG
// state, or polluted a stats path even when disarmed.

TEST(Golden, NoFaultLongFlowRunIsBitwiseIdenticalToPreFaultBaseline) {
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 20;
  cfg.buffer_packets = 60;
  cfg.bottleneck_rate = core::BitsPerSec{50e6};
  cfg.warmup = SimTime::seconds(2);
  cfg.measure = SimTime::seconds(5);
  cfg.seed = 7;
  cfg.record_delays = true;
  cfg.telemetry.metrics = true;
  cfg.faults = fault::FaultSchedule{};  // explicitly empty
  const auto r = run_long_flow_experiment(cfg);

  EXPECT_EQ(r.utilization, 0x1.6a98244e93e1dp-1);  // 0.70819200000000004
  EXPECT_EQ(r.loss_rate, 0x1.c0e41e86d5617p-5);
  EXPECT_EQ(r.bottleneck_drops, 1283u);
  EXPECT_EQ(r.tcp_stats.data_packets_sent, 23441u);
  EXPECT_EQ(r.tcp_stats.timeouts, 52u);
  EXPECT_EQ(r.fault_drops, 0u);
  // The whole observable surface, not just headline numbers: metrics
  // snapshot JSON and the telemetry time series hash to the same bits.
  // (Re-pinned when histograms gained p50/p90/p99 in their snapshot and the
  // sampler gained convergence tracking; the headline numbers above did not
  // move — flow-stats-off runs stay byte-identical on every pre-existing
  // field.)
  EXPECT_EQ(fnv1a(r.telemetry.snapshot.to_json()), 4802808256603441306ull);
  EXPECT_EQ(fnv1a(r.telemetry.series.to_csv()), 7373469491668119683ull);
}

TEST(Golden, SchedulerBackendsProduceBitwiseIdenticalRuns) {
  // The ready-queue backend is an implementation detail: the timing wheel
  // and the reference heap must fire every event in the same order, so the
  // entire observable surface — headline numbers, TCP internals, metrics
  // JSON, telemetry series — must match bit for bit between backends.
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 20;
  cfg.buffer_packets = 60;
  cfg.bottleneck_rate = core::BitsPerSec{50e6};
  cfg.warmup = SimTime::seconds(1);
  cfg.measure = SimTime::seconds(2);
  cfg.seed = 7;
  cfg.record_delays = true;
  cfg.telemetry.metrics = true;

  cfg.scheduler_backend = sim::SchedulerBackend::kHeap;
  const auto heap = run_long_flow_experiment(cfg);
  cfg.scheduler_backend = sim::SchedulerBackend::kWheel;
  const auto wheel = run_long_flow_experiment(cfg);

  EXPECT_EQ(heap.utilization, wheel.utilization);
  EXPECT_EQ(heap.loss_rate, wheel.loss_rate);
  EXPECT_EQ(heap.mean_queue_packets, wheel.mean_queue_packets);
  EXPECT_EQ(heap.bottleneck_drops, wheel.bottleneck_drops);
  EXPECT_EQ(heap.tcp_stats.data_packets_sent, wheel.tcp_stats.data_packets_sent);
  EXPECT_EQ(heap.tcp_stats.timeouts, wheel.tcp_stats.timeouts);
  EXPECT_EQ(heap.delay_p99_sec, wheel.delay_p99_sec);
  EXPECT_EQ(heap.fairness, wheel.fairness);
  EXPECT_EQ(fnv1a(heap.telemetry.snapshot.to_json()),
            fnv1a(wheel.telemetry.snapshot.to_json()));
  EXPECT_EQ(fnv1a(heap.telemetry.series.to_csv()),
            fnv1a(wheel.telemetry.series.to_csv()));
}

TEST(Golden, NoFaultShortFlowRunIsBitwiseIdenticalToPreFaultBaseline) {
  experiment::ShortFlowExperimentConfig cfg;
  cfg.bottleneck_rate = core::BitsPerSec{20e6};
  cfg.buffer_packets = 40;
  cfg.load = 0.7;
  cfg.flow_packets = 30;
  cfg.warmup = SimTime::seconds(1);
  cfg.measure = SimTime::seconds(5);
  cfg.seed = 11;
  const auto r = run_short_flow_experiment(cfg);

  EXPECT_EQ(r.afct_seconds, 0x1.bd2fa66bce1d6p-2);  // 0.43475208313932734
  EXPECT_EQ(r.utilization, 0x1.75d78811b1d93p-1);
  EXPECT_EQ(r.flows_completed, 278u);
  EXPECT_EQ(r.drop_probability, 0x1.f6dd6acb25a0cp-6);
  EXPECT_EQ(r.fault_drops, 0u);
}

TEST(Golden, NoFaultMixedFlowRunIsBitwiseIdenticalToPreFaultBaseline) {
  experiment::MixedFlowExperimentConfig cfg;
  cfg.bottleneck_rate = core::BitsPerSec{30e6};
  cfg.num_long_flows = 8;
  cfg.num_short_leaves = 8;
  cfg.buffer_packets = 50;
  cfg.short_flow_load = 0.2;
  cfg.short_flow_packets = 20;
  cfg.warmup = SimTime::seconds(2);
  cfg.measure = SimTime::seconds(5);
  cfg.seed = 3;
  const auto r = run_mixed_flow_experiment(cfg);

  EXPECT_EQ(r.utilization, 0x1.50022f3d9397bp-1);
  EXPECT_EQ(r.afct_seconds, 0x1.83cccdf09e60cp-2);
  EXPECT_EQ(r.long_flow_throughput_bps, 0x1.a1a08p+23);
  EXPECT_EQ(r.short_flows_completed, 171u);
  EXPECT_EQ(r.fault_drops, 0u);
}

TEST(Golden, ShortFlowModelBufferIs162) {
  // The analytic anchor: load 0.8, 62-packet flows, P = 0.025.
  const auto m = core::burst_moments_for_flow(62);
  EXPECT_NEAR(core::buffer_for_drop_probability(0.8, m, 0.025), 162.3, 0.5);
}

}  // namespace
}  // namespace rbs
