// Golden regression tests: pin the headline reproduction numbers for fixed
// seeds, so any change to engine, TCP, or measurement semantics that would
// silently shift EXPERIMENTS.md shows up as a test failure.
//
// Tolerances are loose enough to survive floating-point library differences
// (exp/log inside the RNG transforms) but tight enough to catch behavioral
// drift. If a deliberate protocol change moves these numbers, update both
// the goldens and EXPERIMENTS.md in the same commit.
#include <gtest/gtest.h>

#include "core/short_flow_model.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/scenarios.hpp"
#include "experiment/short_flow_experiment.hpp"

namespace rbs {
namespace {

using sim::SimTime;

TEST(Golden, SingleFlowRuleOfThumbUtilization) {
  // EXPERIMENTS.md, Fig 3 row: 100.00% at B = BDP.
  auto cfg = experiment::scenarios::single_flow(115);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 1.000, 0.002);
}

TEST(Golden, SingleFlowUnderbufferedUtilization) {
  // EXPERIMENTS.md, Fig 4 row: ~89% at B = BDP/4.
  auto cfg = experiment::scenarios::single_flow(28);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.891, 0.015);
}

TEST(Golden, Oc3HundredFlowsAtSqrtRule) {
  // EXPERIMENTS.md, Fig 10, n=100, 1.0x row: 97.3%.
  auto cfg = experiment::scenarios::oc3_lab(100, 155);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.973, 0.01);
}

TEST(Golden, Oc3HundredFlowsAtHalfRule) {
  // EXPERIMENTS.md, Fig 10, n=100, 0.5x row: 89.3%.
  auto cfg = experiment::scenarios::oc3_lab(100, 78);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.893, 0.015);
}

TEST(Golden, Oc3FourHundredFlowsAtRule) {
  // EXPERIMENTS.md, Fig 10, n=400, 1.0x row: 99.7%.
  auto cfg = experiment::scenarios::oc3_lab(400, 78);
  const auto r = run_long_flow_experiment(cfg);
  EXPECT_NEAR(r.utilization, 0.997, 0.005);
}

TEST(Golden, ShortFlowBaselineAfctAt80Mbps) {
  // EXPERIMENTS.md, Fig 8: 393 ms baseline AFCT at 80 Mb/s, load 0.8.
  auto cfg = experiment::scenarios::fig8_short_flows(80e6, 4000);
  cfg.measure = SimTime::seconds(25);
  const auto r = run_short_flow_experiment(cfg);
  EXPECT_NEAR(r.afct_seconds, 0.393, 0.02);
  EXPECT_NEAR(r.utilization, 0.80, 0.03);
}

TEST(Golden, ShortFlowModelBufferIs162) {
  // The analytic anchor: load 0.8, 62-packet flows, P = 0.025.
  const auto m = core::burst_moments_for_flow(62);
  EXPECT_NEAR(core::buffer_for_drop_probability(0.8, m, 0.025), 162.3, 0.5);
}

}  // namespace
}  // namespace rbs
