// Edge-case tests that cut across modules: RED idle decay, ECN under
// delayed ACKs, fluid model knobs, reporting corner cases.
#include <gtest/gtest.h>

#include "core/fluid_model.hpp"
#include "experiment/reporting.hpp"
#include "net/dumbbell.hpp"
#include "net/red_queue.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace rbs {
namespace {

using namespace rbs::sim::literals;
using sim::SimTime;

TEST(RedIdleDecay, AverageDropsAcrossIdlePeriods) {
  sim::Simulation sim{1};
  net::RedConfig cfg;
  cfg.weight = 0.5;
  cfg.mean_packet_time_sec = 0.001;  // 1 ms service time estimate
  net::RedQueue q{sim, 50, cfg};

  net::Packet p;
  p.kind = net::PacketKind::kTcpData;
  p.size_bytes = 1000;
  // Build the average up...
  for (int i = 0; i < 20; ++i) q.enqueue(p);
  const double avg_loaded = q.average_queue();
  ASSERT_GT(avg_loaded, 5.0);
  // ...drain fully, idle for 100 "service times", then one arrival.
  while (q.dequeue().has_value()) {
  }
  sim.run_until(100_ms);
  q.enqueue(p);
  EXPECT_LT(q.average_queue(), avg_loaded / 4)
      << "idle period should have decayed the EWMA";
}

TEST(EcnWithDelayedAcks, EchoIsNotLostByAckCoalescing) {
  // A CE mark arriving as the *first* of two coalesced packets must still
  // be echoed when the (delayed) ACK finally goes out.
  sim::Simulation sim{1};
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_leaves = 1;
  topo_cfg.access_delays = {5_ms};
  net::Dumbbell topo{sim, topo_cfg};

  class AckLog final : public net::Agent {
   public:
    void on_packet(const net::Packet& p) override { ce.push_back(p.ecn_ce); }
    std::vector<bool> ce;
  } log;
  topo.sender(0).register_agent(1, log);

  tcp::TcpSinkConfig sink_cfg;
  sink_cfg.delayed_ack = true;
  tcp::TcpSink sink{sim, topo.receiver(0), 1, sink_cfg};

  auto data = [&](std::int64_t seq, bool ce) {
    net::Packet p;
    p.flow = 1;
    p.kind = net::PacketKind::kTcpData;
    p.src = topo.sender(0).id();
    p.dst = topo.receiver(0).id();
    p.seq = seq;
    p.size_bytes = 1000;
    p.ecn_ce = ce;
    return p;
  };
  topo.receiver(0).receive(data(0, true));   // CE, ACK delayed
  topo.receiver(0).receive(data(1, false));  // triggers the coalesced ACK
  sim.run();
  ASSERT_EQ(log.ce.size(), 1u);
  EXPECT_TRUE(log.ce[0]) << "CE echo must survive ACK coalescing";
}

TEST(FluidModel, ExplicitRttsOverrideTheRange) {
  core::FluidConfig cfg;
  cfg.num_flows = 2;
  cfg.rtts = {0.05, 0.15};
  cfg.buffer_packets = 200;
  cfg.warmup_sec = 5;
  cfg.measure_sec = 5;
  const auto r = core::run_fluid_model(cfg);  // must not assert/throw
  EXPECT_GT(r.utilization, 0.0);
}

TEST(FluidModel, FinerStepsConverge) {
  core::FluidConfig coarse;
  coarse.num_flows = 50;
  coarse.buffer_packets = 155;
  coarse.warmup_sec = 10;
  coarse.measure_sec = 20;
  coarse.step_fraction = 0.2;
  auto fine = coarse;
  fine.step_fraction = 0.02;
  EXPECT_NEAR(core::run_fluid_model(coarse).utilization,
              core::run_fluid_model(fine).utilization, 0.03);
}

TEST(TablePrinter, EmptyTableRendersHeaderOnly) {
  experiment::TablePrinter t{{"a", "bb"}};
  const auto out = t.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);  // header + separator
  EXPECT_EQ(t.to_csv(), "a,bb\n");
}

TEST(SimTimeEdge, NegativeDurationsRenderAndCompare) {
  const auto d = SimTime::milliseconds(3) - SimTime::milliseconds(10);
  EXPECT_LT(d, SimTime::zero());
  EXPECT_EQ(d.ps(), -7'000'000'000);
  EXPECT_EQ(d.to_string(), "-7ms");
}

TEST(DumbbellEdge, ReverseBufferConfigIsApplied) {
  sim::Simulation sim{1};
  net::DumbbellConfig cfg;
  cfg.num_leaves = 1;
  cfg.access_delays = {5_ms};
  cfg.reverse_buffer_packets = 17;
  net::Dumbbell topo{sim, cfg};
  EXPECT_EQ(topo.reverse_bottleneck().queue().limit_packets(), 17);
  EXPECT_EQ(topo.bottleneck().queue().limit_packets(), cfg.buffer_packets);
}

}  // namespace
}  // namespace rbs
