// Unit tests for the token-bucket traffic shaper.
#include "core/units.hpp"
#include "net/token_bucket.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace rbs::net {
namespace {

using namespace rbs::sim::literals;
using sim::SimTime;

class RecordingSink final : public PacketSink {
 public:
  explicit RecordingSink(sim::Simulation& sim) : sim_{sim} {}
  void receive(const Packet& p) override {
    times.push_back(sim_.now());
    seqs.push_back(p.seq);
  }
  std::vector<SimTime> times;
  std::vector<std::int64_t> seqs;

 private:
  sim::Simulation& sim_;
};

Packet make_packet(std::int64_t seq, std::int32_t bytes = 1000) {
  Packet p;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(TokenBucket, BurstWithinBucketPassesImmediately) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{1e6}, core::Bytes{3000}, 100}, sink};
  for (int i = 0; i < 3; ++i) shaper.receive(make_packet(i, 1000));
  // 3000 bytes of credit -> all three forwarded at t = 0.
  ASSERT_EQ(sink.times.size(), 3u);
  for (const auto t : sink.times) EXPECT_EQ(t, SimTime::zero());
}

TEST(TokenBucket, ExcessTrafficIsPacedAtConfiguredRate) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{1e6} /* 125 kB/s */, core::Bytes{1000}, 100}, sink};
  for (int i = 0; i < 5; ++i) shaper.receive(make_packet(i, 1000));
  sim.run();
  ASSERT_EQ(sink.times.size(), 5u);
  // First free, then one packet every 8 ms (1000 B at 1 Mb/s).
  EXPECT_EQ(sink.times[0], SimTime::zero());
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR((sink.times[i] - sink.times[i - 1]).to_seconds(), 0.008, 1e-6);
  }
}

TEST(TokenBucket, PreservesOrder) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{1e6}, core::Bytes{1000}, 100}, sink};
  for (int i = 0; i < 10; ++i) shaper.receive(make_packet(i));
  sim.run();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.seqs[i], static_cast<std::int64_t>(i));
  }
}

TEST(TokenBucket, DropsBeyondQueueLimit) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{1e6}, core::Bytes{1000}, 4}, sink};
  for (int i = 0; i < 10; ++i) shaper.receive(make_packet(i));
  // 1 forwarded on credit, 4 queued, 5 dropped.
  EXPECT_EQ(shaper.packets_dropped(), 5u);
  sim.run();
  EXPECT_EQ(shaper.packets_forwarded(), 5u);
}

TEST(TokenBucket, CreditAccumulatesDuringIdle) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{1e6}, core::Bytes{3000}, 100}, sink};
  shaper.receive(make_packet(0, 3000));  // drains the bucket
  sim.run();
  // After 24 ms the bucket refills fully (3000 B at 125 kB/s).
  sim.run_until(24_ms);
  shaper.receive(make_packet(1, 3000));
  EXPECT_EQ(shaper.packets_forwarded(), 2u);  // immediate again
}

TEST(TokenBucket, LongRunThroughputMatchesRate) {
  sim::Simulation sim{1};
  RecordingSink sink{sim};
  TokenBucketShaper shaper{sim, "tb", {core::BitsPerSec{2e6}, core::Bytes{2000}, 10'000}, sink};
  // Offer 4 Mb/s for 10 s; expect ~2 Mb/s out.
  for (int i = 0; i < 5000; ++i) {
    sim.at(SimTime::microseconds(i * 2000), [&shaper, i] { shaper.receive(make_packet(i)); });
  }
  sim.run_until(SimTime::seconds(10));
  const double delivered_bits = static_cast<double>(shaper.packets_forwarded()) * 8000.0;
  EXPECT_NEAR(delivered_bits / 10.0, 2e6, 0.05e6);
}

}  // namespace
}  // namespace rbs::net
