// Unit tests for the delay recorder, fairness index, and the Link delay hook.
#include "core/units.hpp"
#include "stats/delay_recorder.hpp"

#include <gtest/gtest.h>

#include "experiment/long_flow_experiment.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace rbs::stats {
namespace {

using namespace rbs::sim::literals;
using sim::SimTime;

TEST(DelayRecorder, QuantilesOfKnownSample) {
  DelayRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(SimTime::milliseconds(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.mean_seconds(), 0.0505, 1e-9);
  EXPECT_NEAR(rec.quantile_seconds(0.0), 0.001, 1e-9);
  EXPECT_NEAR(rec.quantile_seconds(0.5), 0.0505, 0.001);
  EXPECT_NEAR(rec.quantile_seconds(0.99), 0.100, 0.002);
  EXPECT_NEAR(rec.quantile_seconds(1.0), 0.100, 1e-9);
}

TEST(DelayRecorder, InterleavedRecordAndQuery) {
  DelayRecorder rec;
  rec.record(10_ms);
  EXPECT_NEAR(rec.quantile_seconds(0.5), 0.010, 1e-9);
  rec.record(30_ms);  // re-sorts lazily
  EXPECT_NEAR(rec.quantile_seconds(1.0), 0.030, 1e-9);
}

TEST(DelayRecorder, EmptyIsZero) {
  DelayRecorder rec;
  EXPECT_DOUBLE_EQ(rec.quantile_seconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(rec.mean_seconds(), 0.0);
}

TEST(JainFairness, PerfectAndDegenerate) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5, 5, 5, 5}), 1.0);
  EXPECT_NEAR(jain_fairness_index({1, 0, 0, 0}), 0.25, 1e-12);  // 1/n
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0, 0}), 0.0);
}

TEST(JainFairness, PartialSkew) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_fairness_index({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(LinkDelayHook, ReportsQueueingPlusSerialization) {
  sim::Simulation sim{1};
  class NullSink final : public net::PacketSink {
   public:
    void receive(const net::Packet&) override {}
  } sink;
  net::Link link{sim, "l", net::Link::Config{core::BitsPerSec{1e6}, SimTime::zero()},
                 std::make_unique<net::DropTailQueue>(10), sink};
  DelayRecorder rec;
  link.on_queue_delay = [&rec](SimTime d) { rec.record(d); };

  net::Packet p;
  p.size_bytes = 1000;  // 8 ms serialization
  link.receive(p);
  link.receive(p);  // waits 8 ms, then 8 ms serialization
  sim.run();

  ASSERT_EQ(rec.count(), 2u);
  EXPECT_NEAR(rec.quantile_seconds(0.0), 0.008, 1e-9);
  EXPECT_NEAR(rec.quantile_seconds(1.0), 0.016, 1e-9);
}

TEST(ExperimentDelays, BiggerBuffersMeanLongerTails) {
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 10;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(5);
  cfg.measure = SimTime::seconds(10);
  cfg.record_delays = true;

  cfg.buffer_packets = 20;
  const auto small = run_long_flow_experiment(cfg);
  cfg.buffer_packets = 200;
  const auto big = run_long_flow_experiment(cfg);

  EXPECT_GT(small.delay_p99_sec, 0.0);
  EXPECT_GT(big.delay_p99_sec, 2.0 * small.delay_p99_sec);
  EXPECT_GE(big.delay_p99_sec, big.delay_p50_sec);
  // Fairness is reported and sane.
  EXPECT_GT(small.fairness, 0.3);
  EXPECT_LE(small.fairness, 1.0);
}

}  // namespace
}  // namespace rbs::stats
