// Unit tests for Gaussian fitting and normality diagnostics (Figure 6 math).
#include "stats/gaussian_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace rbs::stats {
namespace {

TEST(NormalFunctions, PdfPeakAndSymmetry) {
  EXPECT_NEAR(normal_pdf(0.0, 0.0, 1.0), 0.398942, 1e-5);
  EXPECT_NEAR(normal_pdf(1.0, 0.0, 1.0), normal_pdf(-1.0, 0.0, 1.0), 1e-12);
  // Scaling: pdf of N(5, 2) at 5 is (1/2)*pdf_std(0).
  EXPECT_NEAR(normal_pdf(5.0, 5.0, 2.0), 0.398942 / 2.0, 1e-5);
}

TEST(NormalFunctions, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0, 0.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96, 0.0, 1.0), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96, 0.0, 1.0), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(10.0, 4.0, 3.0), normal_cdf(2.0, 0.0, 1.0), 1e-12);
}

TEST(GaussianFit, RecoversParametersOfNormalSample) {
  sim::Rng rng{1};
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.normal(120.0, 15.0));
  const auto fit = fit_gaussian(xs);
  EXPECT_NEAR(fit.mean, 120.0, 0.5);
  EXPECT_NEAR(fit.stddev, 15.0, 0.3);
  EXPECT_LT(fit.ks_distance, 0.01);
  EXPECT_NEAR(fit.skewness, 0.0, 0.05);
  EXPECT_NEAR(fit.excess_kurtosis, 0.0, 0.1);
}

TEST(GaussianFit, UniformSampleIsDetectablyNonGaussian) {
  sim::Rng rng{2};
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.uniform(0.0, 1.0));
  const auto fit = fit_gaussian(xs);
  // Uniform has excess kurtosis -1.2 and a clearly worse KS fit.
  EXPECT_NEAR(fit.excess_kurtosis, -1.2, 0.1);
  EXPECT_GT(fit.ks_distance, 0.02);
}

TEST(GaussianFit, SkewedSampleHasPositiveSkewness) {
  sim::Rng rng{3};
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.exponential(1.0));
  const auto fit = fit_gaussian(xs);
  EXPECT_GT(fit.skewness, 1.5);  // exponential skewness = 2
  EXPECT_GT(fit.ks_distance, 0.05);
}

TEST(GaussianFit, DegenerateConstantSample) {
  std::vector<double> xs(100, 7.0);
  const auto fit = fit_gaussian(xs);
  EXPECT_DOUBLE_EQ(fit.mean, 7.0);
  EXPECT_DOUBLE_EQ(fit.stddev, 0.0);
  EXPECT_DOUBLE_EQ(fit.ks_distance, 1.0);  // flagged as non-fit
}

TEST(GaussianFit, TwoPointSample) {
  const auto fit = fit_gaussian({0.0, 2.0});
  EXPECT_DOUBLE_EQ(fit.mean, 1.0);
  EXPECT_NEAR(fit.stddev, std::sqrt(2.0), 1e-12);
}

}  // namespace
}  // namespace rbs::stats
