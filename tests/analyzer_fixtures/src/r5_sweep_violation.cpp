// rbs-analyze-fixture-expect: R5
// The sweep exemption does not launder pooled events: a point lambda runs
// inside the (blocking) batch, but anything it hands to the scheduler
// outlives the point. A by-reference capture flowing from the sweep frame
// into schedule_after dangles once the point returns.
#include <cstddef>

struct SimTime {};

struct Sim {
  template <typename F>
  void schedule_after(SimTime delay, F fn);
};

struct SweepRunner {
  template <typename F>
  void run_indexed(std::size_t n, F point);
};

void sweep_with_probes(SweepRunner& runner, std::size_t n) {
  runner.run_indexed(n, [&](std::size_t i) {  // by-ref into the sweep: fine
    Sim sim;
    int probes_fired = 0;
    sim.schedule_after(SimTime{}, [&probes_fired] {  // R5: outlives the point
      ++probes_fired;
    });
    (void)i;
  });
}
