// rbs-analyze-fixture-expect: R5 R5 R5
// By-reference captures in lambdas handed to the pooled scheduler: the
// event outlives the enclosing frame, so these references dangle.
struct SimTime {};

struct Sim {
  template <typename F>
  void after(SimTime delay, F fn);
  template <typename F>
  void schedule_at(SimTime when, F fn);
};

void enqueue_all(Sim& sim) {
  int pending = 3;
  sim.after(SimTime{}, [&] { pending--; });          // R5: default ref capture
  sim.after(SimTime{}, [&pending] { pending--; });   // R5: explicit ref capture
  sim.schedule_at(SimTime{}, [&pending](/*tick*/) { pending--; });  // R5
}
