// rbs-analyze-fixture-expect:
// Deterministic twins of everything r1_violation.cpp does wrong.
#include <cstdint>
#include <map>

struct Rng {
  explicit Rng(std::uint64_t seed);
  Rng fork(std::uint64_t stream) const;
  double uniform();
};

struct Config {
  std::uint64_t seed{1};
};

double good_entropy(const Config& config) {
  Rng rng{config.seed};  // seeded from the run configuration
  return rng.fork(0x51EED).uniform();
}

using FlowId = std::int64_t;
std::map<FlowId, int> g_flow_weights;  // value-keyed: stable iteration order
