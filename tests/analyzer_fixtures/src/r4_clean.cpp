// rbs-analyze-fixture-expect:
// RNG discipline done right: run-seed construction and named-stream forks.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed);
  Rng fork(std::uint64_t stream) const;
  double uniform();
};

struct Config {
  std::uint64_t seed{1};
};

constexpr std::uint64_t kArrivalStream = 0xA881;

double good(const Config& config) {
  Rng root{config.seed};            // seeded from configuration, not a literal
  Rng arrivals = root.fork(kArrivalStream);  // named stream
  return arrivals.uniform();
}
