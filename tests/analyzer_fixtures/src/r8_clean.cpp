// rbs-analyze-fixture-expect:
// Sanctioned backend interactions: choosing a backend (plain assignment /
// construction) is configuration, not semantics, and a stats-only read can
// be justified with an explicit suppression naming its reason.
#include <cstddef>

enum class SchedulerBackend { kHeap, kWheel, kAuto };

struct WheelStats {
  std::size_t wheel_entries = 0;
};

struct Scheduler {
  explicit Scheduler(SchedulerBackend backend);
  WheelStats wheel_stats() const;
};

const char* label(SchedulerBackend b);

Scheduler make_reference_engine() {
  SchedulerBackend backend = SchedulerBackend::kHeap;  // selection: fine
  backend = SchedulerBackend::kWheel;                  // reassignment: fine
  (void)label(backend);
  return Scheduler{backend};
}

std::size_t debug_occupancy(const Scheduler& sched) {
  // rbs-analyze: allow(R8) -- debug log line only; results never read this
  const WheelStats ws = sched.wheel_stats();
  return ws.wheel_entries;
}
