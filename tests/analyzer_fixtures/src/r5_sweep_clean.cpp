// rbs-analyze-fixture-expect:
// Batched sweep dispatch lambdas: SweepRunner::run_indexed / map block the
// calling frame until every point completes, so by-reference captures of
// batch-local state (configs, result arenas, observers) are sound and must
// NOT trip R5 — the rule is scoped to the pooled scheduler calls, whose
// events outlive their enclosing frame.
#include <cstddef>
#include <vector>

struct SweepRunner {
  template <typename F>
  void run_indexed(std::size_t n, F point);
  template <typename R, typename F>
  std::vector<R> map(std::size_t n, F point);
};

void sweep_buffers(SweepRunner& runner, const std::vector<long>& buffers) {
  std::vector<double> util(buffers.size());
  runner.run_indexed(buffers.size(), [&](std::size_t i) {  // blocks: sound
    util[i] = static_cast<double>(buffers[i]);
  });
  runner.run_indexed(buffers.size(),
                     [&util, &buffers](std::size_t i, int /*worker*/) {  // sound
                       util[i] += static_cast<double>(buffers[i]);
                     });
  (void)runner.map<double>(buffers.size(),
                           [&buffers](std::size_t i) {  // sound
                             return static_cast<double>(buffers[i]);
                           });
}
