// rbs-analyze-fixture-expect: R8
// wheel_stats() exposes the wheel backend's occupancy counters for
// telemetry gauges. Reading them from experiment logic couples results to
// which backend happens to be running — the counters are all zero on the
// heap backend, so any decision made on them diverges between backends.
#include <cstddef>

struct WheelStats {
  std::size_t wheel_entries = 0;
};

struct Scheduler {
  WheelStats wheel_stats() const;
};

bool queue_looks_busy(const Scheduler& sched) {
  const WheelStats ws = sched.wheel_stats();  // R8: backend internals
  return ws.wheel_entries > 1000;
}
