// rbs-analyze-fixture-expect:
// Wall-clock reads are sanctioned under src/telemetry/ (profiling needs
// real time); the allowlist must keep R1 quiet here.
#include <chrono>

long profile_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
