// rbs-analyze-fixture-expect: R10 R10 R10
// Raw std concurrency primitives outside the sanctioned wrapper layer
// (src/core/thread_annotations.hpp, src/check/mc/). Each one is state the
// interleaving explorer can never schedule around: the model checker
// instruments only the check::mc spellings. Function-local on purpose, so
// R6/R12 (which look at class fields) stay out of the expectation.
#include <atomic>
#include <condition_variable>
#include <mutex>

int poll_progress() {
  static std::atomic<int> progress{0};  // R10: raw std::atomic
  std::mutex m;                         // R10: raw std::mutex
  std::condition_variable cv;           // R10: raw std::condition_variable
  (void)m;
  (void)cv;
  return progress.load();
}
