// rbs-analyze-fixture-expect: R1 R1 R1 R1 R1
// Every nondeterminism source R1 knows about, in one file.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>

struct Flow;

int bad_entropy() {
  std::random_device rd;  // R1: hardware entropy
  return static_cast<int>(rd());
}

int bad_libc() {
  return rand();  // R1: hidden global state
}

double bad_wall_clock() {
  const auto t = std::chrono::system_clock::now();  // R1: wall clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_wall_clock_2() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // R1
}

// R1: pointer-keyed ordered container iterates in address order.
std::map<Flow*, int> g_flow_weights;
