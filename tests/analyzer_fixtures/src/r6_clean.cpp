// rbs-analyze-fixture-expect:
// The sanctioned parallel-write patterns, none of which may trip R6:
// index-addressed disjoint slots, atomics, RBS_GUARDED_BY fields under a
// lock, per-worker PaddedCounters, and lambda-local state. Spelled with the
// wrapper types (check::mc::Atomic, core::AnnotatedMutex) so R10/R12 stay
// quiet too — this is what sanctioned cross-thread state looks like.
#include <cstddef>
#include <vector>

#define RBS_GUARDED_BY(m)

namespace core {
struct AnnotatedMutex {};
}  // namespace core

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
  Atomic& operator+=(T d) {
    v += d;
    return *this;
  }
};
}  // namespace rbs::check::mc

struct SweepRunner {
  template <typename F>
  void run_indexed(std::size_t n, F point);
};

struct PaddedCounters {
  long points = 0;
};

struct Tally {
  core::AnnotatedMutex m;
  rbs::check::mc::Atomic<long> hits{};
  long total RBS_GUARDED_BY(m) = 0;
  std::vector<PaddedCounters> per_worker;
  const int workers = 4;
};

double compute(std::size_t i);

void sweep_soundly(SweepRunner& runner, std::size_t n, Tally& tally) {
  std::vector<double> out(n);
  runner.run_indexed(n, [&out](std::size_t i) {  // disjoint slots: clean
    out[i] = compute(i);
  });

  auto& hits = tally.hits;
  runner.run_indexed(n, [&hits](std::size_t i) {  // atomic: clean
    hits += static_cast<long>(i != 0);
  });

  runner.run_indexed(n, [&](std::size_t i) {  // lambda-local state: clean
    double local = 0.0;
    local += compute(i);
    (void)local;
  });
}
