// rbs-analyze-fixture-expect: R9 R9 R9
// Metric and trace names invented at the emit site without being added to
// the docs reference table: the registry gauge, the trace instant's event
// name, and the macro's category are all undocumented. Documented names
// ("engine.events_pending", "queue"/"drop") and runtime-built names are
// fine.
struct Gauge {
  void set(double v);
};
struct Registry {
  Gauge& gauge(const char* name);
};
struct Trace {
  void instant(const char* cat, const char* name, long ts);
};
#define RBS_TRACE_INSTANT(s, cat, name, ts) ((s) != nullptr ? (s)->instant(cat, name, ts) : (void)0)

void emit(Registry& reg, Trace* tr, const char* dynamic_name) {
  reg.gauge("engine.events_pending").set(1.0);  // documented: fine
  reg.gauge("engine.secret_knob").set(2.0);     // R9: not in the reference
  tr->instant("queue", "drop", 0);              // documented: fine
  tr->instant("queue", "sideways-drop", 0);     // R9: undocumented event name
  tr->instant("queue", dynamic_name, 0);        // runtime name: out of scope
  RBS_TRACE_INSTANT(tr, "shadow", "timeout", 0);  // R9: undocumented category
}
