// rbs-analyze-fixture-expect: R10 R10 R12
// A cross-thread class whose fields spell raw std primitives. Each raw
// spelling is its own R10; R12 adds the class-level consequence, once per
// class: with fields the model checker cannot instrument, no protocol over
// this class can ever run under the interleaving explorer (tests/mc/).
// The guarded field is classified (no R6) — classification and
// wrappability are separate properties.
#pragma once

#include <atomic>
#include <mutex>

#define RBS_GUARDED_BY(m)

struct WorkQueue {
  std::mutex m;                    // R10; unwrappable
  std::atomic<int> head{0};        // R10; unwrappable
  int tail RBS_GUARDED_BY(m) = 0;  // classified, but the class still
                                   // cannot be modeled: R12 on the class
};
