// rbs-analyze-fixture-expect:
// The sanctioned spellings for the same code: check::mc::Atomic / Mutex /
// CondVar and core::AnnotatedMutex. With RBS_MODEL_CHECK off these ARE the
// std types (see src/check/mc/types.hpp), so there is no cost — and with
// it on, every access becomes a schedule point the explorer can drive.
#include <cstdint>

namespace core {
struct AnnotatedMutex {};
}  // namespace core

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
  T load() const { return v; }
};
struct Mutex {};
struct CondVar {};
}  // namespace rbs::check::mc

namespace mc = rbs::check::mc;

std::uint64_t poll_progress(mc::Atomic<std::uint64_t>& progress) {
  core::AnnotatedMutex m;
  mc::Mutex baton;
  mc::CondVar work_ready;
  (void)m;
  (void)baton;
  (void)work_ready;
  return progress.load();
}
