// rbs-analyze-fixture-expect: R6 R6
// Sweep points run concurrently on worker threads: accumulating into a
// by-reference-captured local races every worker on the same address. The
// sound patterns are an index-addressed slot per point, an atomic, or an
// RBS_GUARDED_BY field — this fixture uses none of them.
#include <cstddef>
#include <vector>

struct SweepRunner {
  template <typename F>
  void run_indexed(std::size_t n, F point);
};

double compute(std::size_t i);

void sweep_and_accumulate(SweepRunner& runner, std::size_t n) {
  double sum = 0.0;
  runner.run_indexed(n, [&sum](std::size_t i) {  // R6: racy accumulation
    sum += compute(i);
  });

  std::vector<double> results;
  runner.run_indexed(n, [&results](std::size_t i) {  // R6: racy push_back
    results.push_back(compute(i));
  });
}
