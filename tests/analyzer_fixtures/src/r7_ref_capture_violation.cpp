// rbs-analyze-fixture-expect: R5 R7
// Capturing a slot reference obtained via `auto&` from the pool trips both
// rules: R5 (by-reference capture into a pooled scheduler callback) and R7
// (the captured name is bound to pool storage that a recycle invalidates).
#include <cstddef>

struct SimTime {};

struct Slots {
  struct Slot {
    int value = 0;
  };
  Slot& operator[](std::size_t i);
};

struct Sim {
  template <typename F>
  void schedule_at(SimTime t, F fn);
};

void arm_from_pool(Sim& sim, Slots& event_pool_, std::size_t idx) {
  auto& slot = event_pool_[idx];
  sim.schedule_at(SimTime{}, [&slot] {  // R5 + R7: dies at the next recycle
    slot.value += 1;
  });
}
