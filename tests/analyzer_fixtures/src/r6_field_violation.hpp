// rbs-analyze-fixture-expect: R6 R6
// A class that owns a mutex (or worker threads) is cross-thread by
// construction, so every mutable member needs a concurrency classification
// the analyses can check: an Atomic wrapper, RBS_GUARDED_BY, a per-worker
// PaddedCounters slot, or const. Unclassified members are exactly the
// state -Wthread-safety cannot see. (Wrapper spellings throughout, so the
// two findings here are R6's alone — not R10/R12 noise.)
#pragma once

#include <cstddef>

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
};
struct Mutex {};
}  // namespace rbs::check::mc

struct ProgressBoard {
  rbs::check::mc::Mutex m;
  rbs::check::mc::Atomic<std::size_t> started;  // classified: fine
  std::size_t completed = 0;                    // R6: mutable, unclassified
  double last_wall = 0.0;                       // R6: mutable, unclassified
  const std::size_t capacity = 64;              // immutable: fine
};
