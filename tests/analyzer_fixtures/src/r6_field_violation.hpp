// rbs-analyze-fixture-expect: R6 R6
// A class that owns a mutex (or worker threads) is cross-thread by
// construction, so every mutable member needs a concurrency classification
// the analyses can check: std::atomic, RBS_GUARDED_BY, a per-worker
// PaddedCounters slot, or const. Unclassified members are exactly the
// state -Wthread-safety cannot see.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>

struct ProgressBoard {
  std::mutex m;
  std::atomic<std::size_t> started{0};  // classified: fine
  std::size_t completed = 0;            // R6: mutable, unclassified
  double last_wall = 0.0;               // R6: mutable, unclassified
  const std::size_t capacity = 64;      // immutable: fine
};
