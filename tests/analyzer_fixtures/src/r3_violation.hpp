// rbs-analyze-fixture-expect: R3 R3 R3 R3 R3
// Raw scalars whose names admit they carry a unit, crossing API boundaries.
#pragma once

#include <cstdint>

struct LinkConfig {
  double rate_bps{1e9};                // R3: should be core::BitsPerSec
  std::int64_t buffer_bytes{64000};    // R3: should be core::Bytes
  std::int64_t window_pkts{100};       // R3: should be core::Packets
  double timeout_seconds{1.0};         // R3: should be sim::SimTime
};

class Shaper {
 public:
  void set_delay(std::int64_t delay_ps);  // R3: should be sim::SimTime

 private:
  long quantum_{1500};  // clean: no unit suffix (naming debt, not R3's job)
};
