// rbs-analyze-fixture-expect: R8 R8
// Both scheduler backends fire every workload in bitwise-identical order;
// they may differ only in speed. Simulation-semantics code that branches
// on the backend kind therefore encodes a determinism bug (or at best a
// pointless fork) — backend probes belong in src/sim/, telemetry profile
// paths, or bench/.
#include <cstddef>

enum class SchedulerBackend { kHeap, kWheel, kAuto };

struct Scheduler {
  SchedulerBackend backend() const;
};

std::size_t pick_batch(const Scheduler& sched) {
  if (sched.backend() == SchedulerBackend::kWheel) {  // R8: semantics fork
    return 64;
  }
  switch (sched.backend()) {
    case SchedulerBackend::kHeap:  // R8: semantics fork
      return 16;
    default:
      return 32;
  }
}
