// rbs-analyze-fixture-expect:
// The same class, MC-wrappable: every field is spelled via the check::mc
// wrapper types (which ARE the std types when RBS_MODEL_CHECK is off), so
// the whole class can be driven by the interleaving explorer — this is the
// shape src/experiment/sweep_dispatch.hpp has.
#pragma once

#define RBS_GUARDED_BY(m)

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
};
struct Mutex {};
struct CondVar {};
}  // namespace rbs::check::mc

struct WorkQueue {
  rbs::check::mc::Mutex m;
  rbs::check::mc::CondVar ready;
  rbs::check::mc::Atomic<int> head{};
  int tail RBS_GUARDED_BY(m) = 0;
};
