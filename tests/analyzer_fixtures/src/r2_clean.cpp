// rbs-analyze-fixture-expect:
// The three sanctioned ways to touch an unordered container:
// key-lookup only, the collect-then-sort pattern, and a justified allow().
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <vector>

struct Workload {
  std::unordered_map<std::int64_t, int> active_;

  int lookup(std::int64_t id) const { return active_.at(id); }

  void dump_sorted() {
    std::vector<std::int64_t> ids;
    ids.reserve(active_.size());
    for (const auto& [id, state] : active_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const auto id : ids) std::printf("%lld\n", static_cast<long long>(id));
  }

  std::int64_t sum() {
    std::int64_t total = 0;
    // rbs-analyze: allow(R2) -- summation is order-independent
    for (const auto& [id, state] : active_) total += state;
    return total;
  }
};
