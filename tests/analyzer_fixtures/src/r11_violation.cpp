// rbs-analyze-fixture-expect: R11 R11
// Memory-order audit. Error prong: a memory_order_relaxed load carries no
// happens-before edge, so using it to guard a delete frees an object whose
// last writes may not yet be visible to this thread — a use-after-free
// window. Informational prong: spelling memory_order_seq_cst restates the
// default; it usually marks an ordering nobody has thought about.
#include <atomic>

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
  T load(std::memory_order) const;
  void store(T, std::memory_order);
};
}  // namespace rbs::check::mc

namespace mc = rbs::check::mc;

struct Node {
  int payload = 0;
};

void reap(mc::Atomic<bool>& retired, Node*& node) {
  if (retired.load(std::memory_order_relaxed)) {  // R11: guards a delete
    delete node;
    node = nullptr;
  }
}

void publish_done(mc::Atomic<int>& flag) {
  flag.store(1, std::memory_order_seq_cst);  // R11 (info): restates default
}
