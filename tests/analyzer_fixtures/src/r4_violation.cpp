// rbs-analyze-fixture-expect: R4 R4 R4
// RNG discipline violations: literal seeds and unseeded construction.
#include <cstdint>

struct Rng {
  Rng();
  explicit Rng(std::uint64_t seed);
  Rng fork(std::uint64_t stream) const;
  double uniform();
};

double literal_seed() {
  Rng rng{42};  // R4: bare literal seed
  return rng.uniform();
}

double literal_seed_parens() {
  Rng rng(7);  // R4: bare literal seed
  return rng.uniform();
}

double unseeded() {
  Rng rng;  // R4: default-constructed
  return rng.uniform();
}
