// rbs-analyze-fixture-expect:
// Clean twin of r9_violation.cpp: every literal metric/trace name appears
// in the fixture docs/observability.md reference, runtime-built names are
// out of scope, and a deliberate exception carries a suppression.
struct Counter {
  void add(unsigned long n);
};
struct Registry {
  Counter& counter(const char* name);
};
struct Trace {
  void instant(const char* cat, const char* name, long ts);
};
#define RBS_TRACE_INSTANT(s, cat, name, ts) ((s) != nullptr ? (s)->instant(cat, name, ts) : (void)0)

const char* reason_name();

void emit(Registry& reg, Trace* tr) {
  reg.counter("link.drops").add(1);
  tr->instant("tcp", "timeout", 0);
  tr->instant("queue", reason_name(), 0);  // runtime name: out of scope
  RBS_TRACE_INSTANT(tr, "tcp", "timeout", 0);
  // rbs-analyze: allow(R9) -- experimental gauge, intentionally undocumented
  reg.counter("engine.prototype_counter").add(1);
}
