// rbs-analyze-fixture-expect:
// The sanctioned orderings for the same two sites: an acquire load pairs
// with the retiring thread's release store before the delete, and a relaxed
// load is fine for control flow that frees nothing (counters, progress
// probes) — R11 only fires when the branch body reclaims memory.
#include <atomic>

namespace rbs::check::mc {
template <typename T>
struct Atomic {
  T v{};
  T load(std::memory_order) const;
  void store(T, std::memory_order);
};
}  // namespace rbs::check::mc

namespace mc = rbs::check::mc;

struct Node {
  int payload = 0;
};

void reap(mc::Atomic<bool>& retired, Node*& node) {
  if (retired.load(std::memory_order_acquire)) {  // pairs a release store
    delete node;
    node = nullptr;
  }
}

void note_progress(mc::Atomic<int>& hits, long& observations) {
  if (hits.load(std::memory_order_relaxed) > 0) {
    ++observations;  // stats-only branch: relaxed is the right order
  }
}
