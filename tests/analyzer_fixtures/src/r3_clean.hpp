// rbs-analyze-fixture-expect:
// The strong-typed twin of r3_violation.hpp: same API, units in the types.
#pragma once

#include <cstdint>

namespace core {
class Bytes;
class Packets;
class BitsPerSec;
}  // namespace core
namespace sim {
class SimTime;
}

struct LinkConfig {
  core::BitsPerSec* rate;
  core::Bytes* buffer;
  core::Packets* window;
  sim::SimTime* timeout;
};

class Shaper {
 public:
  void set_delay(sim::SimTime* delay);

 private:
  // A raw scalar with no unit-suffixed name is fine: nothing for R3 here.
  std::int64_t generation{0};
};
