// rbs-analyze-fixture-expect: R7
// A pointer to a pooled event slot smuggled into a scheduled callback via
// an init-capture dodges R5 (no by-reference capture) but not the lifetime
// hazard: the slot is recycled when its event fires or is cancelled, and
// big-slot (128-byte) storage is reused for the next oversized callback —
// the classic use-after-recycle.
#include <cstddef>

struct SimTime {};

struct EventPool {
  struct Slot {
    int value = 0;
    void fire();
  };
  Slot& operator[](std::size_t i);
};

struct Sim {
  template <typename F>
  void schedule_after(SimTime delay, F fn);
};

void arm_probe(Sim& sim, EventPool& pool, std::size_t idx) {
  EventPool::Slot& slot = pool[idx];
  sim.schedule_after(SimTime{}, [p = &slot] {  // R7: slot outlived by event
    p->fire();
  });
}
