// rbs-analyze-fixture-expect: R2 R2
// Iterating an unordered container where the body's side effects make the
// (hash-layout-dependent) visit order observable.
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

struct Sim {
  void after(long delay_ps, void (*fn)());
};

struct Workload {
  std::unordered_map<std::int64_t, int> active_;
  std::unordered_set<std::int64_t> pending_;
  Sim sim_;

  void kick() {
    for (const auto& [id, state] : active_) {  // R2: schedules in hash order
      sim_.after(id, nullptr);
    }
  }

  void dump() {
    for (const auto id : pending_) {  // R2: prints in hash order
      std::printf("%lld\n", static_cast<long long>(id));
    }
  }
};
