// rbs-analyze-fixture-expect:
// The sound pooled-event patterns: read what you need out of the slot
// before scheduling and capture the copy by value. Synchronous use of a
// slot reference (no capture) is also fine — the reference never outlives
// the statement that obtained it.
#include <cstddef>

struct SimTime {};

struct EventPool {
  struct Slot {
    int value = 0;
    void touch();
  };
  Slot& operator[](std::size_t i);
};

struct Sim {
  template <typename F>
  void schedule_after(SimTime delay, F fn);
};

void consume(int payload);

void arm_by_value(Sim& sim, EventPool& pool, std::size_t idx) {
  EventPool::Slot& slot = pool[idx];
  slot.touch();  // synchronous use: fine
  const int payload = slot.value;
  sim.schedule_after(SimTime{}, [payload] {  // value copy: fine
    consume(payload);
  });
}
