// rbs-analyze-fixture-expect:
// Scheduler callbacks with sound lifetimes: by-value captures, `this`
// (whose lifetime the owner manages by cancelling the event), and
// address-of inside an init capture (not a by-reference capture).
struct SimTime {};

struct Sim {
  template <typename F>
  void after(SimTime delay, F fn);
};

struct Source {
  Sim* sim_;
  int seq_{0};
  void transmit();

  void schedule() {
    sim_->after(SimTime{}, [this] { transmit(); });      // owner-managed
    sim_->after(SimTime{}, [seq = seq_] { (void)seq; }); // by value
    sim_->after(SimTime{}, [self = this] { self->transmit(); });  // address-of
  }
};
