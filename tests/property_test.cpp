// Property-based sweeps (TEST_P): invariants that must hold across the whole
// configuration grid, not just at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>

#include "core/units.hpp"
#include "core/long_flow_model.hpp"
#include "core/short_flow_model.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_schedule.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace rbs {
namespace {

using sim::SimTime;

// ---------------------------------------------------------------------------
// Simulation invariants across (flows, buffer) grid.
// ---------------------------------------------------------------------------
class LongFlowGrid : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(LongFlowGrid, ConservationAndSanity) {
  const auto [flows, buffer] = GetParam();
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.buffer_packets = buffer;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(5);
  cfg.measure = SimTime::seconds(10);
  const auto r = run_long_flow_experiment(cfg);

  // Utilization and loss are proper fractions.
  EXPECT_GE(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_GE(r.loss_rate, 0.0);
  EXPECT_LE(r.loss_rate, 1.0);

  // The mean queue cannot exceed the configured buffer plus in-service slot.
  EXPECT_LE(r.mean_queue_packets, static_cast<double>(buffer) + 1.0);

  // TCP counters are self-consistent.
  const auto& t = r.tcp_stats;
  EXPECT_LE(t.retransmissions, t.data_packets_sent);
  EXPECT_LE(t.fast_retransmits, t.retransmissions + 1);
  EXPECT_GT(t.acks_received, 0u);

  // With several flows on a congested link, something must have been sent.
  EXPECT_GT(t.data_packets_sent, 100u);
}

TEST_P(LongFlowGrid, DeterministicAcrossRepeats) {
  const auto [flows, buffer] = GetParam();
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.buffer_packets = buffer;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  cfg.warmup = SimTime::seconds(2);
  cfg.measure = SimTime::seconds(5);
  const auto a = run_long_flow_experiment(cfg);
  const auto b = run_long_flow_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.bottleneck_drops, b.bottleneck_drops);
  EXPECT_EQ(a.tcp_stats.data_packets_sent, b.tcp_stats.data_packets_sent);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LongFlowGrid,
    ::testing::Combine(::testing::Values(1, 4, 16), ::testing::Values(4, 30, 120)),
    [](const auto& info) {
      return "flows" + std::to_string(std::get<0>(info.param)) + "_buf" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Utilization is (statistically) nondecreasing in buffer size.
// ---------------------------------------------------------------------------
class UtilizationMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(UtilizationMonotonicity, MoreBufferNeverHurtsThroughput) {
  const int flows = GetParam();
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = flows;
  cfg.bottleneck_rate = core::BitsPerSec{10e6};
  // Single/few-flow runs need a long warm-up: the slow-start overshoot
  // transient lasts tens of seconds at 10 Mb/s.
  cfg.warmup = SimTime::seconds(30);
  cfg.measure = SimTime::seconds(20);

  double prev = -1.0;
  for (const std::int64_t buffer : {3, 12, 48, 192}) {
    cfg.buffer_packets = buffer;
    const double u = run_long_flow_experiment(cfg).utilization;
    EXPECT_GE(u, prev - 0.02) << "buffer " << buffer
                              << " dropped utilization beyond noise";
    prev = std::max(prev, u);
  }
  EXPECT_GT(prev, 0.9);  // with ample buffer the link fills
}

INSTANTIATE_TEST_SUITE_P(Flows, UtilizationMonotonicity, ::testing::Values(1, 5, 20),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Model properties over the (rtt, rate, n) grid.
// ---------------------------------------------------------------------------
class ModelGrid
    : public ::testing::TestWithParam<std::tuple<double, double, std::int64_t>> {};

TEST_P(ModelGrid, SqrtRuleScalesAndModelAgrees) {
  const auto [rtt, rate, n] = GetParam();

  // sqrt rule bits scale exactly as 1/sqrt(n).
  const double b1 = core::sqrt_rule_bits(rtt, rate, 1);
  const double bn = core::sqrt_rule_bits(rtt, rate, n);
  EXPECT_NEAR(bn * std::sqrt(static_cast<double>(n)), b1, b1 * 1e-12);

  // The Gaussian model, fed the sqrt-rule buffer, predicts high utilization
  // for aggregates of many flows.
  const core::LongFlowLink link{rate, rtt, n, 1000};
  const auto rule_pkts = core::sqrt_rule_packets(rtt, rate, n, 1000);
  if (n >= 64) {
    EXPECT_GT(core::predicted_utilization(link, rule_pkts), 0.98);
  }

  // Required buffer is consistent with its own utilization curve.
  const auto needed = core::required_buffer_packets(link, 0.99);
  EXPECT_GE(core::predicted_utilization(link, needed), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.25),
                       ::testing::Values(155e6, 2.5e9, 10e9),
                       ::testing::Values(std::int64_t{16}, std::int64_t{256},
                                         std::int64_t{10'000})));

// ---------------------------------------------------------------------------
// Short-flow model properties over (load, flow length).
// ---------------------------------------------------------------------------
class ShortFlowModelGrid
    : public ::testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(ShortFlowModelGrid, TailAndBufferBehaveProperly) {
  const auto [load, flow_len] = GetParam();
  const auto m = core::burst_moments_for_flow(flow_len);

  // Moments are consistent: E[X^2] >= E[X]^2, burst mean <= flow length.
  EXPECT_GE(m.mean_square, m.mean * m.mean - 1e-9);
  EXPECT_LE(m.mean, static_cast<double>(flow_len));
  EXPECT_GE(m.mean, 1.0);

  // Tail decreases in buffer; buffer_for_drop inverts it.
  double prev = 2.0;
  for (const double b : {0.0, 20.0, 80.0, 320.0}) {
    const double p = core::queue_tail_probability(load, m, b);
    EXPECT_LE(p, prev);
    EXPECT_GE(p, 0.0);
    prev = p;
  }
  const double b = core::buffer_for_drop_probability(load, m, 0.01);
  EXPECT_NEAR(core::queue_tail_probability(load, m, b), 0.01, 1e-9);

  // Higher loads need bigger buffers at equal drop targets.
  if (load < 0.9) {
    EXPECT_LT(b, core::buffer_for_drop_probability(0.95, m, 0.01));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShortFlowModelGrid,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.8, 0.9),
                       ::testing::Values(std::int64_t{2}, std::int64_t{14},
                                         std::int64_t{62}, std::int64_t{500})));

// ---------------------------------------------------------------------------
// Fault fuzz: 100 random seeds × random fault schedules, run in paranoia
// mode. The InvariantAuditor (scheduler, queue conservation, TCP endpoints,
// fault-injector composition) throws std::runtime_error on any violation, so
// a clean pass here means arbitrary fault cocktails never corrupt the
// engine's bookkeeping.
// ---------------------------------------------------------------------------
TEST(FaultFuzz, HundredRandomSchedulesUnderParanoiaAreViolationFree) {
  fault::RandomFaultConfig fault_cfg;
  fault_cfg.links = {"bottleneck_fwd", "bottleneck_rev", "acc_up_0", "rcv_down_1"};
  fault_cfg.horizon_begin = SimTime::milliseconds(200);
  fault_cfg.horizon_end = SimTime::milliseconds(1400);
  fault_cfg.num_events = 6;
  fault_cfg.min_duration = SimTime::milliseconds(10);
  fault_cfg.max_duration = SimTime::milliseconds(300);

  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sim::Rng rng{seed};
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = 4;
    cfg.buffer_packets = 20;
    cfg.bottleneck_rate = core::BitsPerSec{5e6};
    cfg.warmup = SimTime::milliseconds(500);
    cfg.measure = SimTime::seconds(1);
    cfg.seed = seed;
    cfg.checked = true;  // paranoia: auditor throws on any violation
    cfg.audit_every_events = 10'000;
    cfg.faults = fault::FaultSchedule::random(rng, fault_cfg);

    experiment::LongFlowExperimentResult r;
    ASSERT_NO_THROW(r = run_long_flow_experiment(cfg)) << "seed " << seed;
    EXPECT_GE(r.utilization, 0.0) << "seed " << seed;
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << "seed " << seed;

    // Spot-check bitwise determinism of faulted runs across the fuzz corpus.
    if (seed % 25 == 0) {
      const auto again = run_long_flow_experiment(cfg);
      EXPECT_EQ(r.utilization, again.utilization) << "seed " << seed;
      EXPECT_EQ(r.fault_drops, again.fault_drops) << "seed " << seed;
      EXPECT_EQ(r.bottleneck_drops, again.bottleneck_drops) << "seed " << seed;
    }
  }
}

// Every armed fault fires and clears, and nothing stays behind in the
// scheduler once the horizon passes: no leaked recovery events, no
// injector-held state that would keep the simulation alive.
class DiscardSink final : public net::PacketSink {
 public:
  void receive(const net::Packet&) override {}
};

TEST(FaultFuzz, InjectorLeavesNoPendingEventsAfterDrain) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulation sim{seed};
    DiscardSink sink;
    net::Link link{sim, "l", net::Link::Config{core::BitsPerSec{1e6}, SimTime::milliseconds(5)},
                   std::make_unique<net::DropTailQueue>(8), sink};

    fault::RandomFaultConfig fault_cfg;
    fault_cfg.links = {"l"};
    fault_cfg.horizon_begin = SimTime::zero();
    fault_cfg.horizon_end = SimTime::seconds(2);
    fault_cfg.num_events = 10;
    fault_cfg.min_duration = SimTime::milliseconds(1);
    fault_cfg.max_duration = SimTime::milliseconds(400);

    sim::Rng rng{seed};
    const auto schedule = fault::FaultSchedule::random(rng, fault_cfg);
    fault::FaultInjector injector{sim};
    injector.attach(link);
    injector.arm(schedule);
    sim.run();

    EXPECT_EQ(sim.scheduler().pending_events(), 0u) << "seed " << seed;
    EXPECT_EQ(injector.totals().events_armed, schedule.size()) << "seed " << seed;
    EXPECT_EQ(injector.totals().onsets_fired, schedule.size()) << "seed " << seed;
    EXPECT_EQ(injector.totals().recoveries_fired, schedule.size()) << "seed " << seed;

    check::AuditReport report;
    injector.audit(report);
    EXPECT_TRUE(report.clean()) << "seed " << seed << ": " << report.messages().front();
  }
}

// ---------------------------------------------------------------------------
// TCP delivers exactly-once for every flow length (loss-free path).
// ---------------------------------------------------------------------------
class FlowLengthSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FlowLengthSweep, ExactDeliveryWithoutLoss) {
  const auto length = GetParam();
  sim::Simulation sim{7};
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_leaves = 1;
  topo_cfg.bottleneck_rate = core::BitsPerSec{10e6};
  topo_cfg.buffer_packets = 1'000'000;  // lossless
  topo_cfg.access_delays = {SimTime::milliseconds(5)};
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpSink sink{sim, topo.receiver(0), 1};
  tcp::TcpSource source{sim, topo.sender(0), topo.receiver(0).id(), 1, tcp::TcpConfig{},
                        length};
  source.start(SimTime::zero());
  sim.run();

  EXPECT_TRUE(source.finished());
  EXPECT_EQ(sink.next_expected(), length);
  EXPECT_EQ(sink.packets_received(), static_cast<std::uint64_t>(length));
  EXPECT_EQ(source.stats().retransmissions, 0u);
  EXPECT_EQ(source.stats().data_packets_sent, static_cast<std::uint64_t>(length));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FlowLengthSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 62, 100, 1000),
                         [](const auto& info) {
                           return "len" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rbs
