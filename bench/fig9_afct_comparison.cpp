// Figure 9: average flow completion time of short flows when the bottleneck
// buffer is RTT·C/√n versus the rule-of-thumb RTT·C, in a mix of long-lived
// and short flows.
//
// The paper's counter-intuitive result: the *small* buffer makes short flows
// finish faster (less queueing delay) while utilization stays ~100%.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Fig 9: short-flow AFCT with RTT*C/sqrt(n) vs RTT*C buffers");

  experiment::MixedFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_long_flows = opts.full ? 100 : 50;
  base.short_flow_load = 0.2;
  base.warmup = sim::SimTime::seconds(opts.full ? 15 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto bdp =
      core::rule_of_thumb_packets(rtt_sec, base.bottleneck_rate.bps(), 1000);
  const auto sqrt_b = core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(),
                                              base.num_long_flows, 1000);

  std::printf("Figure 9 — %d long flows + Poisson short flows (load %.1f), OC3\n",
              base.num_long_flows, base.short_flow_load);
  std::printf("buffers: RTT*C = %lld pkts vs RTT*C/sqrt(n) = %lld pkts\n\n",
              static_cast<long long>(bdp), static_cast<long long>(sqrt_b));

  experiment::TablePrinter table{{"short flow len (pkts)", "AFCT small B (ms)",
                                  "AFCT big B (ms)", "speedup", "util small B", "util big B"}};
  std::string csv =
      "flow_len,afct_small_ms,afct_big_ms,util_small,util_big\n";

  const std::vector<std::int64_t> lengths = opts.full
                                                ? std::vector<std::int64_t>{8, 16, 32, 62, 128}
                                                : std::vector<std::int64_t>{8, 30, 62};
  // Flatten (flow length) x (small, big buffer) into one pool of
  // independent simulation points; report in length order afterwards.
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::MixedFlowExperimentResult>(
      lengths.size() * 2, [&](std::size_t idx) {
        auto cfg = base;
        cfg.short_flow_packets = lengths[idx / 2];
        cfg.buffer_packets = (idx % 2 == 0) ? sqrt_b : bdp;
        auto r = run_mixed_flow_experiment(cfg);
        if (idx % 2 == 1) {
          std::fprintf(stderr, "  [fig9] finished len=%lld\n",
                       static_cast<long long>(lengths[idx / 2]));
        }
        return r;
      });

  for (std::size_t idx = 0; idx < lengths.size(); ++idx) {
    const auto len = lengths[idx];
    const auto& small = results[idx * 2];
    const auto& big = results[idx * 2 + 1];

    table.add_row({experiment::format("%lld", static_cast<long long>(len)),
                   experiment::format("%.1f", 1e3 * small.afct_seconds),
                   experiment::format("%.1f", 1e3 * big.afct_seconds),
                   experiment::format("%.2fx", big.afct_seconds / small.afct_seconds),
                   experiment::format("%.1f%%", 100 * small.utilization),
                   experiment::format("%.1f%%", 100 * big.utilization)});
    csv += experiment::format("%lld,%.3f,%.3f,%.4f,%.4f\n", static_cast<long long>(len),
                              1e3 * small.afct_seconds, 1e3 * big.afct_seconds,
                              small.utilization, big.utilization);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/fig9_afct.csv", csv);

  std::printf("expected shape (paper Fig 9): AFCT is consistently *lower* with the\n"
              "RTT*C/sqrt(n) buffer (speedup > 1) while utilization stays comparable —\n"
              "big buffers only add queueing delay.\n");
  return 0;
}
