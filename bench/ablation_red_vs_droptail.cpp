// §5.1 ablation: the paper expects the √n result to hold for queueing
// disciplines beyond drop-tail, RED in particular. Same sweep under both.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: drop-tail vs RED at sqrt-rule buffers (Section 5.1)");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 200 : 100;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto rule = core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(),
                                            base.num_flows, 1000);

  std::printf("Queue disciplines — OC3, n=%d, buffer = k * RTT*C/sqrt(n) (= %lld pkts)\n\n",
              base.num_flows, static_cast<long long>(rule));
  experiment::TablePrinter table{{"buffer", "drop-tail util", "RED util", "RED+ECN util",
                                  "DRR util", "drop-tail loss", "RED loss", "RED+ECN loss",
                                  "DRR loss"}};
  std::string csv = "multiple,droptail_util,red_util,ecn_util,drr_util,droptail_loss,"
                    "red_loss,ecn_loss,drr_loss\n";

  // Flatten (buffer multiple) x (discipline) into independent sweep points;
  // run concurrently and report in the original nested order.
  const std::vector<double> mults{0.5, 1.0, 2.0, 3.0};
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::LongFlowExperimentResult>(
      mults.size() * 4, [&](std::size_t idx) {
        auto cfg = base;
        cfg.buffer_packets = std::max<std::int64_t>(
            4, static_cast<std::int64_t>(std::llround(mults[idx / 4] * rule)));
        switch (idx % 4) {
          case 0:
            cfg.discipline = net::QueueDiscipline::kDropTail;
            break;
          case 1:
          case 2:
            cfg.discipline = net::QueueDiscipline::kRed;
            // Tune RED for the small-buffer regime: Floyd's default
            // thresholds (limit/4, 3*limit/4) would early-drop away most of
            // an already-small buffer; in deployment the thresholds sit
            // near the physical limit.
            cfg.red.min_threshold = static_cast<double>(cfg.buffer_packets) / 2.0;
            cfg.red.max_threshold = static_cast<double>(cfg.buffer_packets);
            cfg.red.ecn_marking = (idx % 4 == 2);
            break;
          case 3:
            cfg.discipline = net::QueueDiscipline::kDrr;
            break;
        }
        auto r = run_long_flow_experiment(cfg);
        if (idx % 4 == 3) std::fprintf(stderr, "  [red] finished %.1fx\n", mults[idx / 4]);
        return r;
      });

  for (std::size_t m = 0; m < mults.size(); ++m) {
    const double mult = mults[m];
    const auto& dt = results[m * 4];
    const auto& red = results[m * 4 + 1];
    const auto& ecn = results[m * 4 + 2];
    const auto& drr = results[m * 4 + 3];

    table.add_row({experiment::format("%.1f x", mult),
                   experiment::format("%.2f%%", 100 * dt.utilization),
                   experiment::format("%.2f%%", 100 * red.utilization),
                   experiment::format("%.2f%%", 100 * ecn.utilization),
                   experiment::format("%.2f%%", 100 * drr.utilization),
                   experiment::format("%.3f%%", 100 * dt.loss_rate),
                   experiment::format("%.3f%%", 100 * red.loss_rate),
                   experiment::format("%.3f%%", 100 * ecn.loss_rate),
                   experiment::format("%.3f%%", 100 * drr.loss_rate)});
    csv += experiment::format("%.1f,%.4f,%.4f,%.4f,%.4f,%.5f,%.5f,%.5f,%.5f\n", mult,
                              dt.utilization, red.utilization, ecn.utilization,
                              drr.utilization, dt.loss_rate, red.loss_rate, ecn.loss_rate,
                              drr.loss_rate);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_red.csv", csv);

  std::printf("expected shape: RED tracks drop-tail within a few points of utilization at\n"
              "every buffer multiple (trading a little throughput for lower loss via early\n"
              "drops) and converges toward it as the multiple grows — the sizing rule is\n"
              "not a drop-tail artifact.\n");
  return 0;
}
