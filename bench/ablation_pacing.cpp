// Extension bench: paced TCP with very small buffers.
//
// The buffer-sizing line of work that followed this paper ("Routers with
// Very Small Buffers", Enachescu et al.) showed that if senders pace —
// spreading each window over an RTT instead of bursting on ACKs — buffers
// can shrink another order of magnitude, to O(log W) packets. This bench
// reproduces the effect: sweep buffers from far below the √n rule upward,
// unpaced vs paced.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Extension: paced TCP sustains utilization with very small buffers");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 200 : 100;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto rule =
      core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(), base.num_flows, 1000);

  std::printf("Pacing at very small buffers — OC3, n=%d, sqrt rule = %lld pkts\n\n",
              base.num_flows, static_cast<long long>(rule));
  experiment::TablePrinter table{{"buffer (pkts)", "unpaced util", "paced util",
                                  "unpaced loss", "paced loss"}};
  std::string csv = "buffer,paced,utilization,loss\n";

  for (const std::int64_t buffer :
       {std::int64_t{5}, std::int64_t{10}, std::int64_t{20}, rule / 2, rule}) {
    auto cfg = base;
    cfg.buffer_packets = buffer;

    cfg.tcp.pacing = false;
    const auto unpaced = run_long_flow_experiment(cfg);
    cfg.tcp.pacing = true;
    cfg.tcp.pacing_initial_rtt = sim::SimTime::milliseconds(80);
    const auto paced = run_long_flow_experiment(cfg);

    table.add_row({experiment::format("%lld", static_cast<long long>(buffer)),
                   experiment::format("%.2f%%", 100 * unpaced.utilization),
                   experiment::format("%.2f%%", 100 * paced.utilization),
                   experiment::format("%.3f%%", 100 * unpaced.loss_rate),
                   experiment::format("%.3f%%", 100 * paced.loss_rate)});
    csv += experiment::format("%lld,0,%.4f,%.5f\n", static_cast<long long>(buffer),
                              unpaced.utilization, unpaced.loss_rate);
    csv += experiment::format("%lld,1,%.4f,%.5f\n", static_cast<long long>(buffer),
                              paced.utilization, paced.loss_rate);
    std::fprintf(stderr, "  [pacing] finished buffer=%lld\n",
                 static_cast<long long>(buffer));
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_pacing.csv", csv);

  std::printf("expected shape (follow-up work): unpaced TCP needs ~the sqrt rule; paced\n"
              "TCP holds high utilization down to buffers of a few tens of packets —\n"
              "the gap is widest at 10-20 packets and closes by the sqrt rule.\n");
  return 0;
}
