// §1.1 table: the cost of overbuffering — queueing delay vs buffer size.
//
// "Overbuffering increases end-to-end delay in the presence of congestion.
// Large buffers conflict with the low-latency needs of real time
// applications." This bench quantifies that: per-packet bottleneck delay
// (mean / p50 / p99), utilization, loss, and inter-flow fairness across
// buffer sizes from half the √n rule up to the full rule of thumb.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Table (Section 1.1): queueing-delay cost of overbuffering");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 200 : 100;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 20);
  base.record_delays = true;
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto rule =
      core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(), base.num_flows, 1000);
  const auto bdp = core::rule_of_thumb_packets(rtt_sec, base.bottleneck_rate.bps(), 1000);

  std::printf("Delay cost of buffering — OC3, n=%d, sqrt rule = %lld pkts, RTT*C = %lld\n\n",
              base.num_flows, static_cast<long long>(rule), static_cast<long long>(bdp));
  experiment::TablePrinter table{{"buffer (pkts)", "util", "mean delay", "p99 delay",
                                  "loss", "fairness"}};
  std::string csv = "buffer,utilization,mean_delay_ms,p99_delay_ms,loss,fairness\n";

  const std::vector<std::int64_t> buffers = {rule / 2, rule, 2 * rule, bdp / 4, bdp / 2, bdp};
  for (const auto buffer : buffers) {
    auto cfg = base;
    cfg.buffer_packets = std::max<std::int64_t>(buffer, 4);
    const auto r = run_long_flow_experiment(cfg);
    table.add_row({experiment::format("%lld%s", static_cast<long long>(cfg.buffer_packets),
                                      cfg.buffer_packets == rule          ? " (sqrt)"
                                      : cfg.buffer_packets == bdp         ? " (RTT*C)"
                                                                          : ""),
                   experiment::format("%.2f%%", 100 * r.utilization),
                   experiment::format("%.2f ms", 1e3 * r.delay_mean_sec),
                   experiment::format("%.2f ms", 1e3 * r.delay_p99_sec),
                   experiment::format("%.3f%%", 100 * r.loss_rate),
                   experiment::format("%.3f", r.fairness)});
    csv += experiment::format("%lld,%.4f,%.4f,%.4f,%.5f,%.4f\n",
                              static_cast<long long>(cfg.buffer_packets), r.utilization,
                              1e3 * r.delay_mean_sec, 1e3 * r.delay_p99_sec, r.loss_rate,
                              r.fairness);
    std::fprintf(stderr, "  [delay] finished buffer=%lld\n",
                 static_cast<long long>(cfg.buffer_packets));
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) {
    experiment::write_file(opts.csv_dir + "/table_delay.csv", csv);
    experiment::write_gnuplot_script(
        opts.csv_dir, "table_delay", "Delay cost of buffering (Section 1.1)",
        "buffer (pkts)", "milliseconds / fraction",
        {{"mean delay (ms)", 1, 3}, {"p99 delay (ms)", 1, 4}});
  }

  // Context: what the buffer means in worst-case milliseconds.
  std::printf("worst-case buffer drain time: sqrt rule %.1f ms vs RTT*C %.1f ms\n",
              static_cast<double>(rule) * 8000.0 / base.bottleneck_rate.bps() * 1e3,
              static_cast<double>(bdp) * 8000.0 / base.bottleneck_rate.bps() * 1e3);
  std::printf("expected shape (§1.1): utilization saturates at ~the sqrt rule while p99\n"
              "delay keeps climbing linearly with the buffer — everything beyond the rule\n"
              "buys only latency (and slightly less loss), not throughput.\n");
  return 0;
}
