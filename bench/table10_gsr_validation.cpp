// Figure 10 (table): utilization of an OC3 bottleneck for n = 100..400
// long-lived flows with buffers of 0.5/1/2/3 × RTT·C/√n — model vs
// simulation, mirroring the paper's Cisco GSR 12410 validation table.
//
// The physical router columns are reproduced by the same simulation engine
// (see DESIGN.md substitutions); "paper exp." quotes the published
// measurements for side-by-side comparison.
#include <cmath>
#include <cstdio>

#include "core/fluid_model.hpp"
#include "core/long_flow_model.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"

namespace {

/// Published utilization (%) from the paper's Figure 10, indexed by
/// [n/100 - 1][multiple index 0.5x,1x,2x,3x]: the "Exp." column.
constexpr double kPaperExp[4][4] = {
    {94.9, 98.1, 99.8, 99.7},
    {98.6, 99.7, 99.8, 99.8},
    {99.6, 99.8, 99.8, 100.0},
    {99.5, 100.0, 100.0, 99.9},
};

std::string ram_size(double bits) {
  // Smallest power-of-two memory (in Mbit) holding the buffer, as in the
  // paper's "RAM" column.
  double mbit = 0.5;
  while (mbit * 1e6 < bits) mbit *= 2;
  if (mbit < 1.0) return rbs::experiment::format("%.0f kbit", mbit * 1000);
  return rbs::experiment::format("%.0f Mbit", mbit);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Table (Fig 10): model vs simulation vs published GSR measurements");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 20);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const double multiples[] = {0.5, 1.0, 2.0, 3.0};

  std::printf("Figure 10 table — OC3 POS, long-lived flows, buffer = k * RTT*C/sqrt(n)\n");
  std::printf("(paper exp. column: published Cisco GSR 12410 measurements)\n\n");

  experiment::TablePrinter table{{"flows", "buffer", "pkts", "RAM", "model util",
                                  "fluid util", "sim util", "paper exp."}};
  std::string csv = "n,multiple,buffer_pkts,model_util,fluid_util,sim_util,paper_exp_util\n";

  for (int ni = 0; ni < 4; ++ni) {
    const int n = 100 * (ni + 1);
    const auto rule = core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(), n, 1000);
    for (int mi = 0; mi < 4; ++mi) {
      const double mult = multiples[mi];
      const auto buffer = static_cast<std::int64_t>(std::llround(mult * static_cast<double>(rule)));

      auto cfg = base;
      cfg.num_flows = n;
      cfg.buffer_packets = buffer;
      const auto sim_result = run_long_flow_experiment(cfg);

      const core::LongFlowLink model{base.bottleneck_rate.bps(), rtt_sec, n, 1000};
      const double model_util = core::predicted_utilization(model, buffer);

      core::FluidConfig fluid_cfg;
      fluid_cfg.rate_bps = base.bottleneck_rate.bps();
      fluid_cfg.num_flows = n;
      fluid_cfg.buffer_packets = buffer;
      fluid_cfg.seed = opts.seed;
      const double fluid_util = core::fluid_utilization(fluid_cfg);

      table.add_row({experiment::format("%d", n), experiment::format("%.1f x", mult),
                     experiment::format("%lld", static_cast<long long>(buffer)),
                     ram_size(static_cast<double>(buffer) * 8000),
                     experiment::format("%.1f%%", 100 * model_util),
                     experiment::format("%.1f%%", 100 * fluid_util),
                     experiment::format("%.1f%%", 100 * sim_result.utilization),
                     experiment::format("%.1f%%", kPaperExp[ni][mi])});
      csv += experiment::format("%d,%.1f,%lld,%.4f,%.4f,%.4f,%.3f\n", n, mult,
                                static_cast<long long>(buffer), model_util, fluid_util,
                                sim_result.utilization, kPaperExp[ni][mi]);
    }
    std::fprintf(stderr, "  [table10] finished n=%d\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/table10_gsr.csv", csv);

  std::printf("expected shape (paper Fig 10): utilization within a few points of full at\n"
              "1x and >=99.8%% at 2-3x for every n; the 0.5x row falls short, and the\n"
              "shortfall shrinks as n grows (desynchronization).\n");
  return 0;
}
