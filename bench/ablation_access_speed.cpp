// Ablation (§4): slow access links smooth slow-start bursts.
//
// The paper: "highly aggregated traffic from slow access links in some cases
// can lead to bursts being smoothed out completely. In this case individual
// packet arrivals are close to Poisson, resulting in even smaller buffers
// (computable with an M/D/1 model by setting X_i = 1)."
//
// We sweep the access/bottleneck speed ratio and compare the measured queue
// tail against the bursty M/G/1 bound and the smoothed M/D/1 bound.
#include <cmath>
#include <cstdio>

#include "core/short_flow_model.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"
#include "experiment/short_flow_experiment.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: access-link speed smooths short-flow bursts (Section 4)");

  experiment::ShortFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{40e6};
  base.load = 0.8;
  base.flow_packets = 62;
  base.buffer_packets = 2000;  // effectively infinite: we study the tail
  base.num_leaves = opts.full ? 100 : 50;
  base.warmup = sim::SimTime::seconds(5);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 30);
  base.seed = opts.seed;

  const auto bursts = core::burst_moments_for_flow(base.flow_packets);
  const double b_mg1 = core::buffer_for_drop_probability(base.load, bursts, 0.025);
  const double b_md1 = core::md1_buffer_for_drop_probability(base.load, 0.025);

  std::printf("Access-speed sweep — 40 Mb/s bottleneck, load 0.8, 62-pkt flows\n");
  std::printf("model buffers for P=0.025: bursty M/G/1 = %.0f pkts, smoothed M/D/1 = %.0f pkts\n\n",
              b_mg1, b_md1);

  experiment::TablePrinter table{{"access/bottleneck", "P(Q>=40)", "P(Q>=80)", "P(Q>=160)",
                                  "mean Q", "util"}};
  std::string csv = "ratio,p40,p80,p160,mean_queue,utilization\n";

  const auto tail_at = [](const std::vector<double>& t, std::size_t b) {
    return b < t.size() ? t[b] : 0.0;
  };

  // Ratios below 1 model the paper's motivating case: edge links (modems,
  // DSL) far slower than the core link, which spread each slow-start burst
  // over many bottleneck service times.
  for (const double ratio : {0.1, 0.3, 1.0, 10.0}) {
    auto cfg = base;
    cfg.access_rate = ratio * base.bottleneck_rate;
    const auto r = run_short_flow_experiment(cfg);
    table.add_row({experiment::format("%.1f x", ratio),
                   experiment::format("%.4f", tail_at(r.queue_tail, 40)),
                   experiment::format("%.4f", tail_at(r.queue_tail, 80)),
                   experiment::format("%.4f", tail_at(r.queue_tail, 160)),
                   experiment::format("%.1f", r.mean_queue_packets),
                   experiment::format("%.1f%%", 100 * r.utilization)});
    csv += experiment::format("%.1f,%.5f,%.5f,%.5f,%.2f,%.4f\n", ratio,
                              tail_at(r.queue_tail, 40), tail_at(r.queue_tail, 80),
                              tail_at(r.queue_tail, 160), r.mean_queue_packets,
                              r.utilization);
    std::fprintf(stderr, "  [access] finished ratio %.1f\n", ratio);
  }
  std::printf("%s\n", table.render().c_str());

  // Model reference rows for the same abscissae.
  std::printf("model tails:  M/G/1 (bursty):  P(Q>=40)=%.4f  P(Q>=80)=%.4f  P(Q>=160)=%.4f\n",
              core::queue_tail_probability(base.load, bursts, 40),
              core::queue_tail_probability(base.load, bursts, 80),
              core::queue_tail_probability(base.load, bursts, 160));
  const core::BurstMoments unit{1.0, 1.0};
  std::printf("              M/D/1 (smooth):  P(Q>=40)=%.4f  P(Q>=80)=%.4f  P(Q>=160)=%.4f\n\n",
              core::queue_tail_probability(base.load, unit, 40),
              core::queue_tail_probability(base.load, unit, 80),
              core::queue_tail_probability(base.load, unit, 160));
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_access.csv", csv);

  std::printf("expected shape (§4): as access links slow toward the bottleneck rate, the\n"
              "queue tail collapses from near the bursty M/G/1 curve toward the M/D/1\n"
              "curve — slow edges buy the core even smaller buffers.\n");
  return 0;
}
