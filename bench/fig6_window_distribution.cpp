// Figure 6: the distribution of the sum of congestion windows of many
// desynchronized flows converges to a Gaussian.
//
// Runs n long-lived flows, samples W(t) = Σ cwnd_i, fits a normal
// distribution, prints a textual histogram-vs-fit comparison plus normality
// diagnostics, and verifies the CLT 1/√n width scaling across n.
#include <cmath>
#include <cstdio>

#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "stats/gaussian_fit.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Fig 6: aggregate congestion window converges to a Gaussian");

  const int base_flows = opts.full ? 200 : 100;
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = base_flows;
  cfg.buffer_packets = 200;
  cfg.warmup = sim::SimTime::seconds(opts.full ? 30 : 15);
  cfg.measure = sim::SimTime::seconds(opts.full ? 120 : 40);
  cfg.cwnd_sample_interval = sim::SimTime::milliseconds(10);
  cfg.seed = opts.seed;

  std::printf("Figure 6 — distribution of W(t) = sum of congestion windows, n=%d flows\n\n",
              cfg.num_flows);
  const auto result = experiment::run_long_flow_experiment(cfg);
  const auto samples = result.total_cwnd.values();
  const auto fit = stats::fit_gaussian(samples);

  std::printf("samples: %zu   mean: %.1f pkts   stddev: %.1f pkts\n", samples.size(), fit.mean,
              fit.stddev);
  std::printf("normality: KS distance %.4f, skewness %+.3f, excess kurtosis %+.3f\n\n",
              fit.ks_distance, fit.skewness, fit.excess_kurtosis);

  // Textual density plot: empirical histogram vs fitted normal.
  const double lo = fit.mean - 4 * fit.stddev;
  const double hi = fit.mean + 4 * fit.stddev;
  stats::Histogram hist{lo, hi, 31};
  for (const double s : samples) hist.add(s);

  // The paper's figure draws two vertical marks: below `pipe` the link
  // goes idle; above `pipe + B` the buffer overflows and packets drop.
  const double pipe = result.bdp_packets;
  const double overflow = pipe + static_cast<double>(cfg.buffer_packets);
  std::printf("%10s  %-30s %-30s\n", "W (pkts)", "empirical density", "gaussian fit");
  double peak = 0;
  for (int b = 0; b < hist.bins(); ++b) {
    peak = std::max(peak, hist.density(b));
  }
  std::string csv = "w_pkts,empirical_density,gaussian_density\n";
  for (int b = 0; b < hist.bins(); ++b) {
    const double x = hist.bin_center(b);
    const double emp = hist.density(b);
    const double model = stats::normal_pdf(x, fit.mean, fit.stddev);
    const auto bar = [&](double v) {
      return std::string(static_cast<std::size_t>(29.0 * v / peak + 0.5), '#');
    };
    const char* mark = "";
    if (std::abs(x - pipe) <= hist.bin_width() / 2) {
      mark = "  <- link idle below (2Tp*C)";
    } else if (std::abs(x - overflow) <= hist.bin_width() / 2) {
      mark = "  <- buffer overflows above (2Tp*C + B)";
    }
    std::printf("%10.0f  %-30s %-30s%s\n", x, bar(emp).c_str(), bar(model).c_str(), mark);
    csv += experiment::format("%.2f,%.8g,%.8g\n", x, emp, model);
  }
  std::printf("boundaries: link idle below W = %.0f pkts; drops above W = %.0f pkts\n", pipe,
              overflow);
  if (opts.want_csv()) {
    experiment::write_file(opts.csv_dir + "/fig6_distribution.csv", csv);
    experiment::write_gnuplot_script(
        opts.csv_dir, "fig6_distribution", "Aggregate congestion window distribution (Fig 6)",
        "sum of congestion windows (pkts)", "probability density",
        {{"empirical", 1, 2}, {"gaussian fit", 1, 3}});
  }

  // CLT check: stddev of W should shrink ~1/sqrt(n) relative to its mean.
  std::printf("\nCLT width scaling (stddev/mean of W vs n):\n");
  experiment::TablePrinter table{{"n", "mean W", "stddev W", "cv", "cv*sqrt(n)"}};
  for (const int n : {25, 50, base_flows}) {
    auto c = cfg;
    c.num_flows = n;
    c.sample_per_flow_cwnd = false;
    const auto r = experiment::run_long_flow_experiment(c);
    const auto f = stats::fit_gaussian(r.total_cwnd.values());
    const double cv = f.stddev / f.mean;
    table.add_row({experiment::format("%d", n), experiment::format("%.0f", f.mean),
                   experiment::format("%.1f", f.stddev), experiment::format("%.4f", cv),
                   experiment::format("%.3f", cv * std::sqrt(static_cast<double>(n)))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(a roughly constant last column is the 1/sqrt(n) scaling of Section 3)\n");
  return 0;
}
