// §1.3 table: what buffer memory each sizing rule implies for real line
// cards, using the paper's 2004 device parameters — the engineering
// motivation for the whole result.
#include <cstdio>

#include "core/memory_model.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Table (Section 1.3): buffer memory feasibility by sizing rule");

  const double rtt_sec = 0.25;  // the 250 ms the paper's operators demand
  struct Rule {
    const char* name;
    std::int64_t n;  // 0 = rule of thumb
  };
  const Rule rules[] = {{"RTT*C (rule of thumb)", 0},
                        {"RTT*C/sqrt(10k flows)", 10'000},
                        {"RTT*C/sqrt(50k flows)", 50'000}};

  std::printf("Memory feasibility (2004 devices: SRAM 36Mb/4ns, DRAM 1Gb/50ns, eDRAM 256Mb)\n");
  std::printf("min-packet access budget shown per line rate; RTT = 250 ms\n\n");

  experiment::TablePrinter table{{"line rate", "rule", "buffer", "SRAM chips", "DRAM chips",
                                  "DRAM access", "fits on-chip eDRAM"}};
  std::string csv = "rate_bps,rule,buffer_bits,sram_chips,dram_chips,dram_ok,edram_fits\n";

  for (const double rate : {2.5e9, 10e9, 40e9, 100e9}) {
    for (const auto& rule : rules) {
      const double bits = rule.n == 0 ? core::bandwidth_delay_product_bits(rtt_sec, rate)
                                      : core::sqrt_rule_bits(rtt_sec, rate, rule.n);
      const auto memories = core::evaluate_reference_memories(bits, rate);
      const auto& sram = memories[0];
      const auto& dram = memories[1];
      const auto& edram = memories[2];

      const char* size_fmt = bits >= 1e9 ? "%.1f Gbit" : "%.1f Mbit";
      table.add_row(
          {experiment::format("%.1f Gb/s", rate / 1e9), rule.name,
           experiment::format(size_fmt, bits >= 1e9 ? bits / 1e9 : bits / 1e6),
           experiment::format("%lld", static_cast<long long>(sram.chips_required)),
           experiment::format("%lld", static_cast<long long>(dram.chips_required)),
           dram.access_time_ok ? "ok" : experiment::format("too slow (%.0fns > %.2fns)",
                                                           dram.device.random_access_ns,
                                                           dram.packet_time_ns),
           edram.single_chip_ok ? "yes" : "no"});
      csv += experiment::format("%.3g,%s,%.4g,%lld,%lld,%d,%d\n", rate, rule.name, bits,
                                static_cast<long long>(sram.chips_required),
                                static_cast<long long>(dram.chips_required),
                                dram.access_time_ok ? 1 : 0, edram.single_chip_ok ? 1 : 0);
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/table_memory.csv", csv);

  // The paper's trend remark: DRAM access improves only ~7%/year.
  std::printf("DRAM random access projection (7%%/yr): 2004 %.0f ns",
              core::projected_dram_access_ns(0));
  for (const int y : {5, 10, 20}) {
    std::printf(" | %d: %.1f ns", 2004 + y, core::projected_dram_access_ns(y));
  }
  std::printf("\nheadline check: a 10 Gb/s link with 50k flows needs %.1f Mbit — %s\n",
              core::sqrt_rule_bits(rtt_sec, 10e9, 50'000) / 1e6,
              "\"easily implemented using fast, on-chip SRAM\" (abstract)");
  if (opts.full) {
    std::printf("(--full adds nothing here: the table is analytic)\n");
  }
  return 0;
}
