// Figure 11 (table): the Stanford production-network experiment — a
// 20 Mb/s-throttled router carrying live mixed traffic (~400 concurrent
// flows), measured at buffers of 500/85/65/46 packets.
//
// Our stand-in for live dormitory traffic (per DESIGN.md substitutions):
// long-lived TCP flows + Poisson short flows with heavy-tailed sizes +
// a small non-reactive UDP share. Also reruns the §5.3 Internet2
// qualitative check: 0.5% of the default buffer at high flow counts causes
// no measurable degradation.
#include <cmath>
#include <cstdio>

#include "core/long_flow_model.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/reporting.hpp"

namespace {
struct PaperRow {
  std::int64_t buffer;
  double paper_util;  ///< published measured utilization (%)
};
constexpr PaperRow kPaperRows[] = {{500, 99.92}, {85, 98.55}, {65, 97.55}, {46, 97.41}};
}  // namespace

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Table (Fig 11): Stanford production-network experiment, 20 Mb/s");

  // 45 long flows makes RTT*C/sqrt(n) ~= 54 pkts, so the paper's buffer
  // points 46/65/85 land at 0.85x/1.2x/1.6x — the same multiples as the
  // published table (0.8x/1.2x/1.5x). Short flows and UDP bring the
  // *concurrent* flow count toward the paper's "~400 estimated".
  experiment::MixedFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{20e6};
  base.num_long_flows = 45;
  base.short_flow_load = 0.10;
  base.short_sizing = experiment::ShortFlowSizing::kPareto;
  base.pareto_alpha = 1.2;
  base.pareto_min_packets = 2;
  base.pareto_max_packets = 2000;
  base.udp_load = 0.03;
  base.num_short_leaves = 40;
  // Wider delay spread, max RTT ~250 ms as the paper assumed.
  base.access_delay_min = sim::SimTime::milliseconds(10);
  base.access_delay_max = sim::SimTime::milliseconds(112);
  base.warmup = sim::SimTime::seconds(opts.full ? 30 : 15);
  base.measure = sim::SimTime::seconds(opts.full ? 120 : 40);
  base.seed = opts.seed;

  const double rtt_sec = 2.0 * (0.061 + 0.010 + 0.001);  // mean propagation RTT = 144 ms
  const auto sqrt_rule = core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(),
                                                 base.num_long_flows, 1000);
  std::printf("Figure 11 table — 20 Mb/s, ~%d long + short/UDP mix, RTT*C/sqrt(n) = %lld pkts\n\n",
              base.num_long_flows, static_cast<long long>(sqrt_rule));

  experiment::TablePrinter table{{"buffer (pkts)", "multiple of sqrt-rule", "sim util",
                                  "paper util", "model util", "short-flow AFCT (ms)"}};
  std::string csv = "buffer,multiple,sim_util,paper_util,model_util,afct_ms\n";

  for (const auto& row : kPaperRows) {
    auto cfg = base;
    cfg.buffer_packets = row.buffer;
    const auto r = run_mixed_flow_experiment(cfg);
    const core::LongFlowLink model{base.bottleneck_rate.bps(), rtt_sec, base.num_long_flows,
                                   1000};
    const double model_util = core::predicted_utilization(model, row.buffer);
    const double multiple =
        static_cast<double>(row.buffer) / static_cast<double>(sqrt_rule);

    table.add_row({experiment::format("%lld", static_cast<long long>(row.buffer)),
                   experiment::format("%.2f x", multiple),
                   experiment::format("%.2f%%", 100 * r.utilization),
                   experiment::format("%.2f%%", row.paper_util),
                   experiment::format("%.2f%%", 100 * model_util),
                   experiment::format("%.1f", 1e3 * r.afct_seconds)});
    csv += experiment::format("%lld,%.3f,%.4f,%.4f,%.4f,%.3f\n",
                              static_cast<long long>(row.buffer), multiple, r.utilization,
                              row.paper_util / 100.0, model_util, 1e3 * r.afct_seconds);
    std::fprintf(stderr, "  [table11] finished buffer=%lld\n",
                 static_cast<long long>(row.buffer));
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/table11_production.csv", csv);

  std::printf("expected shape (paper Fig 11): ~full utilization at 500 and ~1.5x, then a\n"
              "drop of a few percent as the buffer falls below ~1x of RTT*C/sqrt(n).\n\n");

  // §5.3 Internet2 qualitative check: the trial ran the router at 5 ms of
  // buffering instead of the default 1 second (0.5%) and saw no measurable
  // degradation. Same time-units comparison at our scale: a 5 ms buffer on a
  // loaded OC3 with hundreds of flows should still run ~full.
  {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = opts.full ? 500 : 300;
    cfg.bottleneck_rate = core::BitsPerSec{155e6};
    cfg.warmup = sim::SimTime::seconds(10);
    cfg.measure = sim::SimTime::seconds(opts.full ? 60 : 20);
    cfg.seed = opts.seed;
    const auto one_second =
        static_cast<std::int64_t>(1.0 * cfg.bottleneck_rate.bps() / 8000.0);
    cfg.buffer_packets = one_second / 200;  // 5 ms worth of packets
    const auto r = run_long_flow_experiment(cfg);
    std::printf("Internet2-style check (§5.3): %d flows, buffer = 5 ms instead of 1 s "
                "(%lld of %lld pkts, 0.5%%) -> utilization %.2f%%\n",
                cfg.num_flows, static_cast<long long>(cfg.buffer_packets),
                static_cast<long long>(one_second), 100 * r.utilization);
  }
  return 0;
}
