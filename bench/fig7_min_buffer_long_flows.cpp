// Figure 7: minimum buffer required for 98 / 99.5 / 99.9 % utilization of an
// OC3 (155 Mb/s) link carrying n long-lived TCP flows (~80 ms average RTT),
// compared with the paper's model line RTT·C/√n.
//
// Also reports the measured loss rate at the √n buffer — the §5.1.1
// observation that smaller buffers raise the loss rate as l ≈ 0.76/W².
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Fig 7: minimum buffer for target utilization vs number of long flows");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 20);
  base.seed = opts.seed;

  const std::vector<int> flow_counts =
      opts.full ? std::vector<int>{50, 100, 150, 200, 250, 300, 400, 500}
                : std::vector<int>{50, 100, 200, 300};
  const std::vector<double> targets =
      opts.full ? std::vector<double>{0.980, 0.995, 0.999} : std::vector<double>{0.980, 0.995};

  // Mean RTT of the default topology: 2*(29 + 10 + 1) ms = 80 ms.
  const double rtt_sec = 0.080;
  const double bdp_pkts = rtt_sec * base.bottleneck_rate.bps() / 8000.0;

  std::printf("Figure 7 — OC3 (155 Mb/s), mean RTT 80 ms, BDP = %.0f packets\n", bdp_pkts);
  std::printf("model line: B = RTT*C/sqrt(n) (2x for 99.9%%)\n\n");

  std::vector<std::string> headers{"n", "model RTT*C/sqrt(n)"};
  for (const double t : targets) headers.push_back(experiment::format("min B @%.1f%%", 100 * t));
  headers.push_back("loss @ sqrt-rule B");
  experiment::TablePrinter table{headers};
  std::string csv = "n,model_pkts";
  for (const double t : targets) csv += experiment::format(",min_buffer_%.1f", 100 * t);
  csv += ",loss_at_sqrt_rule\n";

  // Each row is an independent (n, target) study: run them all concurrently
  // and print in flow-count order afterwards. Every point builds its own
  // Simulation, so results are bitwise identical to a serial run.
  struct Fig7Row {
    std::int64_t model_pkts{0};
    std::int64_t hi{0};
    std::vector<std::int64_t> min_b;
    double loss_at_rule{0.0};
  };
  experiment::SweepRunner runner{opts.threads};
  const auto rows = runner.map<Fig7Row>(flow_counts.size(), [&](std::size_t idx) {
    const int n = flow_counts[idx];
    auto cfg = base;
    cfg.num_flows = n;
    Fig7Row out;
    out.model_pkts = core::sqrt_rule_packets(rtt_sec, cfg.bottleneck_rate.bps(), n, 1000);

    for (const double target : targets) {
      // Bracket the search around the model prediction; a result pinned at
      // the top of the bracket is reported as a ">= bound" (synchronized
      // small-n cases can need far more than the model says).
      const auto lo = std::max<std::int64_t>(2, out.model_pkts / 3);
      out.hi = std::min<std::int64_t>(static_cast<std::int64_t>(bdp_pkts) * 2,
                                      out.model_pkts * 8);
      out.min_b.push_back(experiment::min_buffer_for_utilization(cfg, target, lo, out.hi));
    }

    cfg.buffer_packets = out.model_pkts;
    out.loss_at_rule = experiment::run_long_flow_experiment(cfg).loss_rate;
    std::fprintf(stderr, "  [fig7] finished n=%d\n", n);
    return out;
  });

  for (std::size_t idx = 0; idx < flow_counts.size(); ++idx) {
    const int n = flow_counts[idx];
    const Fig7Row& r = rows[idx];
    std::vector<std::string> row{experiment::format("%d", n),
                                 experiment::format("%lld", static_cast<long long>(r.model_pkts))};
    std::string csv_row = experiment::format("%d,%lld", n, static_cast<long long>(r.model_pkts));
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const auto min_b = r.min_b[t];
      const char* prefix = min_b >= r.hi ? ">=" : "";
      row.push_back(experiment::format("%s%lld (%.2fx)", prefix, static_cast<long long>(min_b),
                                       static_cast<double>(min_b) /
                                           static_cast<double>(r.model_pkts)));
      csv_row += experiment::format(",%lld", static_cast<long long>(min_b));
    }
    row.push_back(experiment::format("%.3f%%", 100.0 * r.loss_at_rule));
    csv_row += experiment::format(",%.6f", r.loss_at_rule);
    table.add_row(std::move(row));
    csv += csv_row + "\n";
  }
  std::printf("%s\n", table.render().c_str());

  if (opts.want_csv()) {
    experiment::write_file(opts.csv_dir + "/fig7_min_buffer.csv", csv);
    std::vector<experiment::PlotSeries> series{{"model RTT*C/sqrt(n)", 1, 2}};
    for (std::size_t t = 0; t < targets.size(); ++t) {
      series.push_back({experiment::format("measured @%.1f%%", 100 * targets[t]), 1,
                        static_cast<int>(3 + t)});
    }
    experiment::write_gnuplot_script(opts.csv_dir, "fig7_min_buffer",
                                     "Minimum buffer vs number of long flows (Fig 7)",
                                     "concurrent long-lived flows n", "buffer (pkts)",
                                     series, /*logscale_y=*/true);
  }
  std::printf("expected shape (paper Fig 7): the minimum buffer tracks RTT*C/sqrt(n)\n"
              "(within ~0.5-2x once n exceeds ~250, where synchronization vanishes), and\n"
              "the 99.9%% column needs about twice the 98%% column.\n");
  return 0;
}
