// Figures 2–5: a single long-lived TCP flow through one bottleneck with
// correctly sized (B = RTT×C), under- (B = RTT×C/4), and over-sized
// (B = 2·RTT×C) buffers.
//
// Prints, per buffer setting, the measured utilization and queue behaviour,
// and (with --csv) the W(t)/Q(t) traces behind the paper's Figure 3–5 plots.
#include <cstdio>
#include <memory>

#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulation.hpp"
#include "stats/time_series.hpp"
#include "stats/utilization.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

namespace {

using namespace rbs;

struct TraceResult {
  double utilization;
  double min_queue_after_warmup;
  double mean_queue;
  stats::TimeSeries window;
  stats::TimeSeries queue;
};

TraceResult trace_single_flow(std::int64_t buffer_packets, sim::SimTime horizon,
                              std::uint64_t seed) {
  sim::Simulation sim{seed};

  net::DumbbellConfig topo_cfg;
  topo_cfg.num_leaves = 1;
  topo_cfg.bottleneck_rate = core::BitsPerSec{10e6};  // slow link makes the sawtooth visible
  topo_cfg.bottleneck_delay = sim::SimTime::milliseconds(10);
  topo_cfg.access_delays = {sim::SimTime::milliseconds(35)};
  topo_cfg.buffer_packets = buffer_packets;
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpSink sink{sim, topo.receiver(0), 1};
  tcp::TcpSource source{sim, topo.sender(0), topo.receiver(0).id(), 1, tcp::TcpConfig{}};
  source.start(sim::SimTime::zero());

  const auto warmup = sim::SimTime::seconds(25);  // past the slow-start transient
  sim.run_until(warmup);
  topo.bottleneck().reset_stats();
  stats::UtilizationMeter meter{sim, topo.bottleneck()};
  meter.begin();

  TraceResult result{};
  result.min_queue_after_warmup = 1e18;
  stats::PeriodicSampler window_sampler{sim, sim::SimTime::milliseconds(20),
                                        [&] { return source.cwnd(); }};
  stats::PeriodicSampler queue_sampler{sim, sim::SimTime::milliseconds(20), [&] {
    const auto q = static_cast<double>(topo.bottleneck().occupancy_packets());
    if (q < result.min_queue_after_warmup) result.min_queue_after_warmup = q;
    return q;
  }};
  window_sampler.start(sim.now());
  queue_sampler.start(sim.now());

  sim.run_until(warmup + horizon);

  result.utilization = meter.utilization();
  result.mean_queue = queue_sampler.series().summary().mean();
  result.window = std::move(window_sampler.series());
  result.queue = std::move(queue_sampler.series());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = experiment::parse_cli(
      argc, argv, "Fig 2-5: single TCP flow with under/correct/over-sized buffers");
  const auto horizon = sim::SimTime::seconds(opts.full ? 120 : 40);

  // 10 Mb/s, RTT = 2*(35+10+1) ms = 92 ms -> BDP = 115 packets of 1000B.
  const std::int64_t bdp = 115;
  struct Case {
    const char* name;
    std::int64_t buffer;
  };
  const Case cases[] = {
      {"underbuffered (RTT*C/4)", bdp / 4},
      {"rule of thumb (RTT*C)", bdp},
      {"overbuffered (2*RTT*C)", 2 * bdp},
  };

  std::printf("Figure 3/4/5 — single long-lived TCP flow, 10 Mb/s bottleneck, RTT 92 ms\n");
  std::printf("BDP = %lld packets\n\n", static_cast<long long>(bdp));

  experiment::TablePrinter table{
      {"case", "buffer (pkts)", "utilization", "min Q (pkts)", "mean Q (pkts)"}};
  for (const auto& c : cases) {
    const auto r = trace_single_flow(c.buffer, horizon, opts.seed);
    table.add_row({c.name, experiment::format("%lld", static_cast<long long>(c.buffer)),
                   experiment::format("%.2f%%", 100.0 * r.utilization),
                   experiment::format("%.0f", r.min_queue_after_warmup),
                   experiment::format("%.1f", r.mean_queue)});
    if (opts.want_csv()) {
      experiment::write_file(opts.csv_dir + "/fig3_window_" + std::to_string(c.buffer) + ".csv",
                             "time_sec,cwnd_pkts\n" + r.window.to_csv());
      experiment::write_file(opts.csv_dir + "/fig3_queue_" + std::to_string(c.buffer) + ".csv",
                             "time_sec,queue_pkts\n" + r.queue.to_csv());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape (paper Fig 3-5): underbuffered link goes idle (util < 100%%,\n"
              "min Q = 0); rule-of-thumb stays busy with Q just touching 0; overbuffered\n"
              "stays busy but queue never drains (higher delay).\n");
  return 0;
}
