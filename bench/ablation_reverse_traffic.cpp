// Ablation: two-way congestion (reverse traffic and ACK compression).
//
// The paper's experiments congest one direction only. Real backbone links
// carry data both ways, so ACKs of forward flows share the reverse queue
// with reverse-direction data, get compressed into bursts, and roughen the
// forward ACK clock. We run n flows forward and n flows backward with both
// bottleneck directions sized at RTT·C/√n and check the sizing rule's
// resilience.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulation.hpp"
#include "stats/utilization.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: two-way traffic / ACK compression at sqrt-rule buffers");

  const int n = opts.full ? 200 : 100;
  const auto warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  const auto measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  const double rtt_sec = 0.080;
  const double rate = 155e6;
  const auto rule = core::sqrt_rule_packets(rtt_sec, rate, n, 1000);

  std::printf("Two-way traffic — OC3 both directions, %d flows each way, "
              "buffer = k * RTT*C/sqrt(n) (= %lld pkts) per direction\n\n",
              n, static_cast<long long>(rule));

  experiment::TablePrinter table{{"buffer", "fwd util (1-way)", "fwd util (2-way)",
                                  "rev util (2-way)", "fwd loss (2-way)"}};
  std::string csv = "multiple,fwd_util_oneway,fwd_util_twoway,rev_util,fwd_loss\n";

  for (const double mult : {1.0, 2.0, 3.0}) {
    const auto buffer =
        std::max<std::int64_t>(4, static_cast<std::int64_t>(std::llround(mult * rule)));

    auto run = [&](bool two_way) {
      sim::Simulation sim{opts.seed};
      net::DumbbellConfig cfg;
      cfg.num_leaves = n;
      cfg.bottleneck_rate = core::BitsPerSec{rate};
      cfg.buffer_packets = buffer;
      cfg.reverse_buffer_packets = two_way ? buffer : 1'000'000;
      net::Dumbbell topo{sim, cfg};

      std::vector<std::unique_ptr<tcp::TcpSink>> sinks;
      std::vector<std::unique_ptr<tcp::TcpSource>> sources;
      auto rng = sim.rng().fork(0x2A7);
      net::FlowId flow = 1;
      const auto start = [&] {
        return sim::SimTime::picoseconds(rng.uniform_int(0, sim::SimTime::seconds(5).ps()));
      };
      for (int i = 0; i < n; ++i) {  // forward flows
        sinks.push_back(std::make_unique<tcp::TcpSink>(sim, topo.receiver(i), flow));
        sources.push_back(std::make_unique<tcp::TcpSource>(
            sim, topo.sender(i), topo.receiver(i).id(), flow, tcp::TcpConfig{}, -1));
        sources.back()->start(start());
        ++flow;
      }
      if (two_way) {
        for (int i = 0; i < n; ++i) {  // reverse flows
          sinks.push_back(std::make_unique<tcp::TcpSink>(sim, topo.sender(i), flow));
          sources.push_back(std::make_unique<tcp::TcpSource>(
              sim, topo.receiver(i), topo.sender(i).id(), flow, tcp::TcpConfig{}, -1));
          sources.back()->start(start());
          ++flow;
        }
      }

      sim.run_until(warmup);
      topo.bottleneck().reset_stats();
      topo.reverse_bottleneck().reset_stats();
      stats::UtilizationMeter fwd{sim, topo.bottleneck()};
      stats::UtilizationMeter rev{sim, topo.reverse_bottleneck()};
      fwd.begin();
      rev.begin();
      sim.run_until(warmup + measure);

      const auto& q = topo.bottleneck().queue().stats();
      const auto offered = topo.bottleneck().stats().packets_delivered +
                           static_cast<std::uint64_t>(topo.bottleneck().queue().size_packets()) +
                           q.dropped_packets;
      const double loss =
          offered ? static_cast<double>(q.dropped_packets) / static_cast<double>(offered)
                  : 0.0;
      return std::tuple{fwd.utilization(), rev.utilization(), loss};
    };

    const auto [fwd1, rev1, loss1] = run(false);
    const auto [fwd2, rev2, loss2] = run(true);
    (void)rev1;
    (void)loss1;

    table.add_row({experiment::format("%.1f x", mult),
                   experiment::format("%.2f%%", 100 * fwd1),
                   experiment::format("%.2f%%", 100 * fwd2),
                   experiment::format("%.2f%%", 100 * rev2),
                   experiment::format("%.3f%%", 100 * loss2)});
    csv += experiment::format("%.1f,%.4f,%.4f,%.4f,%.5f\n", mult, fwd1, fwd2, rev2, loss2);
    std::fprintf(stderr, "  [reverse] finished %.1fx\n", mult);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_reverse.csv", csv);

  std::printf("expected shape: reverse data compresses the forward ACK clock and costs a\n"
              "few points at 1x, but both directions stay near full by 2-3x the sqrt rule —\n"
              "two-way congestion bends the rule, it does not break it.\n");
  return 0;
}
