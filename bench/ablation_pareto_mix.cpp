// §5.1.3 ablation: "We ran similar experiments with Pareto distributed flow
// lengths with essentially identical results."
//
// Repeats the Figure 9 comparison with heavy-tailed (Pareto) short-flow
// sizes instead of fixed sizes.
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/reporting.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: Pareto vs fixed short-flow sizes (Section 5.1.3)");

  experiment::MixedFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_long_flows = opts.full ? 100 : 50;
  base.short_flow_load = 0.2;
  base.warmup = sim::SimTime::seconds(10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto bdp = core::rule_of_thumb_packets(rtt_sec, base.bottleneck_rate.bps(), 1000);
  const auto sqrt_b = core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(),
                                              base.num_long_flows, 1000);

  std::printf("Pareto vs fixed short flows — %d long flows + short load %.1f, OC3\n\n",
              base.num_long_flows, base.short_flow_load);
  experiment::TablePrinter table{{"sizing", "buffer", "utilization", "AFCT (ms)",
                                  "drop prob"}};
  std::string csv = "sizing,buffer_pkts,utilization,afct_ms,drop_prob\n";

  for (const bool pareto : {false, true}) {
    for (const auto buffer : {sqrt_b, bdp}) {
      auto cfg = base;
      cfg.buffer_packets = buffer;
      cfg.short_sizing =
          pareto ? experiment::ShortFlowSizing::kPareto : experiment::ShortFlowSizing::kFixed;
      cfg.short_flow_packets = 62;
      cfg.pareto_alpha = 1.2;
      cfg.pareto_min_packets = 2;
      cfg.pareto_max_packets = 2000;
      const auto r = run_mixed_flow_experiment(cfg);

      const char* label = pareto ? "pareto(1.2)" : "fixed(62)";
      const char* bname = buffer == sqrt_b ? "RTT*C/sqrt(n)" : "RTT*C";
      table.add_row({label, experiment::format("%s (%lld)", bname, static_cast<long long>(buffer)),
                     experiment::format("%.2f%%", 100 * r.utilization),
                     experiment::format("%.1f", 1e3 * r.afct_seconds),
                     experiment::format("%.3f%%", 100 * r.drop_probability)});
      csv += experiment::format("%s,%lld,%.4f,%.3f,%.5f\n", label,
                                static_cast<long long>(buffer), r.utilization,
                                1e3 * r.afct_seconds, r.drop_probability);
      std::fprintf(stderr, "  [pareto] finished %s buffer=%lld\n", label,
                   static_cast<long long>(buffer));
    }
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_pareto.csv", csv);

  std::printf("expected shape (§5.1.3): conclusions unchanged under heavy-tailed sizes —\n"
              "full utilization at the small buffer, and lower AFCT than with RTT*C.\n");
  return 0;
}
