// Buffer requirement vs congestion-control algorithm × flow count, after
// Spang, Arslan & McKeown, "Updating the Theory of Buffer Sizing"
// (arXiv 2109.11693).
//
// The paper's √n rule was derived for Reno-style AIMD. This matrix reruns
// the min-buffer bisection per (CCA, n) cell and shows how the rule breaks
// for modern CCAs:
//   - CUBIC's shallower backoff (β = 0.7) needs MORE buffer than Reno at
//     the same flow count;
//   - a BBRv1-style rate model holds its utilization plateau almost
//     independently of buffer depth — its requirement decouples from √n;
//   - DCTCP reaches full utilization with a shallow *marked* buffer: the
//     step-marking threshold K, not the buffer, sets the operating point.
#include <cstdio>
#include <vector>

#include "experiment/cca_matrix.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "CCA matrix: minimum buffer per congestion-control flavor x flow count");

  experiment::CcaMatrixConfig mc;
  mc.threads = opts.threads;
  mc.base.seed = opts.seed;
  if (opts.full) {
    // Paper-like scale: OC3 with the default ~80 ms RTT spread.
    mc.base.bottleneck_rate = core::BitsPerSec{155e6};
    mc.base.warmup = sim::SimTime::seconds(15);
    mc.base.measure = sim::SimTime::seconds(30);
    mc.flow_counts = {10, 40, 100};
  } else {
    mc.base.bottleneck_rate = core::BitsPerSec{50e6};
    mc.base.warmup = sim::SimTime::seconds(10);
    mc.base.measure = sim::SimTime::seconds(15);
    mc.flow_counts = {10, 40};
  }

  std::printf("CCA x flow-count buffer matrix (target utilization %.0f%%)\n\n",
              100.0 * mc.target_utilization);
  const auto result = run_cca_buffer_matrix(mc);
  std::printf("%s\n", experiment::to_table(result).c_str());

  if (opts.want_csv()) {
    experiment::write_file(opts.csv_dir + "/fig_cca_matrix.csv", experiment::to_csv(result));
    const std::vector<experiment::PlotSeries> series{{"min buffer (pkts)", 2, 3},
                                                     {"sqrt rule (pkts)", 2, 5}};
    experiment::write_gnuplot_script(opts.csv_dir, "fig_cca_matrix",
                                     "Minimum buffer vs flow count per CCA",
                                     "concurrent long-lived flows n", "buffer (pkts)", series,
                                     /*logscale_y=*/true);
  }

  std::printf(
      "expected shape (Spang et al.): reno/newreno track the sqrt rule (vs_sqrt near 1x);\n"
      "cubic needs more buffer than newreno at the same n; bbr's min buffer stays small\n"
      "and nearly flat in n (decoupled from the sqrt rule); dctcp reaches the target with\n"
      "a shallow marked buffer and near-zero drops.\n");
  return 0;
}
