// Ablation (§5.1): the paper assumes a single congested link. What happens
// to end-to-end flows that cross SEVERAL links, each sized at RTT·C/√n for
// its own flow count?
//
// Parking-lot chain: e2e flows traverse every segment; each segment also
// carries its own local cross-traffic. We congest 1, 2, or 3 segments and
// report per-segment utilization plus e2e goodput.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/units.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"
#include "net/parking_lot.hpp"
#include "sim/simulation.hpp"
#include "stats/utilization.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: multiple congested links on one path (Section 5.1)");

  const int e2e = opts.full ? 30 : 15;
  const int local_per_seg = opts.full ? 30 : 15;
  const auto warmup = sim::SimTime::seconds(10);
  const auto measure = sim::SimTime::seconds(opts.full ? 60 : 25);

  std::printf("Parking lot — 3 segments at 50 Mb/s, %d e2e flows, buffers = RTT*C/sqrt(n)\n",
              e2e);
  std::printf("congested segments carry %d extra local flows each\n\n", local_per_seg);

  experiment::TablePrinter table{{"congested segs", "seg0 util", "seg1 util", "seg2 util",
                                  "e2e goodput share", "e2e timeouts/s"}};
  std::string csv = "congested,seg0,seg1,seg2,e2e_share,e2e_timeouts_per_sec\n";

  for (int congested = 1; congested <= 3; ++congested) {
    sim::Simulation sim{opts.seed};
    net::ParkingLotConfig cfg;
    cfg.num_segments = 3;
    cfg.segment_rate = core::BitsPerSec{50e6};
    cfg.num_e2e_leaves = e2e;
    cfg.num_local_leaves_per_segment = local_per_seg;
    // Size each segment's buffer for the flows it actually carries.
    const double rtt_sec = 0.06;  // ~mean propagation RTT in this topology
    cfg.buffer_packets = core::sqrt_rule_packets(rtt_sec, cfg.segment_rate.bps(),
                                                 e2e + local_per_seg, 1000);
    net::ParkingLot lot{sim, cfg};

    std::vector<std::unique_ptr<tcp::TcpSink>> sinks;
    std::vector<std::unique_ptr<tcp::TcpSource>> sources;
    std::vector<tcp::TcpSource*> e2e_sources;
    auto rng = sim.rng().fork(0xE2E);
    net::FlowId flow = 1;

    const auto launch = [&](net::Host& snd, net::Host& rcv, bool is_e2e) {
      sinks.push_back(std::make_unique<tcp::TcpSink>(sim, rcv, flow));
      sources.push_back(
          std::make_unique<tcp::TcpSource>(sim, snd, rcv.id(), flow, tcp::TcpConfig{}, -1));
      if (is_e2e) e2e_sources.push_back(sources.back().get());
      sources.back()->start(
          sim::SimTime::picoseconds(rng.uniform_int(0, sim::SimTime::seconds(5).ps())));
      ++flow;
    };

    for (int i = 0; i < e2e; ++i) launch(lot.e2e_sender(i), lot.e2e_receiver(i), true);
    // Local cross-traffic only on the first `congested` segments.
    for (int s = 0; s < congested; ++s) {
      for (int i = 0; i < local_per_seg; ++i) {
        launch(lot.local_sender(s, i), lot.local_receiver(s, i), false);
      }
    }

    sim.run_until(warmup);
    for (int s = 0; s < 3; ++s) lot.segment(s).reset_stats();
    std::vector<std::int64_t> una0;
    for (auto* src : e2e_sources) una0.push_back(src->snd_una());
    std::uint64_t timeouts0 = 0;
    for (const auto& src : sources) timeouts0 += src->stats().timeouts;
    std::vector<stats::UtilizationMeter> meters;
    meters.reserve(3);
    for (int s = 0; s < 3; ++s) meters.emplace_back(sim, lot.segment(s));
    for (auto& m : meters) m.begin();

    sim.run_until(warmup + measure);

    // E2E goodput share of segment 0 (their common bottleneck).
    double e2e_pkts = 0;
    for (std::size_t i = 0; i < e2e_sources.size(); ++i) {
      e2e_pkts += static_cast<double>(e2e_sources[i]->snd_una() - una0[i]);
    }
    const double e2e_share =
        e2e_pkts * 8000.0 / (cfg.segment_rate.bps() * measure.to_seconds());
    std::uint64_t timeouts1 = 0;
    for (const auto& src : sources) timeouts1 += src->stats().timeouts;
    const double to_rate =
        static_cast<double>(timeouts1 - timeouts0) / measure.to_seconds();

    table.add_row({experiment::format("%d", congested),
                   experiment::format("%.1f%%", 100 * meters[0].utilization()),
                   experiment::format("%.1f%%", 100 * meters[1].utilization()),
                   experiment::format("%.1f%%", 100 * meters[2].utilization()),
                   experiment::format("%.1f%%", 100 * e2e_share),
                   experiment::format("%.1f", to_rate)});
    csv += experiment::format("%d,%.4f,%.4f,%.4f,%.4f,%.2f\n", congested,
                              meters[0].utilization(), meters[1].utilization(),
                              meters[2].utilization(), e2e_share, to_rate);
    std::fprintf(stderr, "  [parking] finished %d congested segment(s)\n", congested);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_parking.csv", csv);

  std::printf("expected shape: congested segments stay near full utilization with sqrt-rule\n"
              "buffers even when a path crosses two or three of them; e2e flows lose share\n"
              "to single-hop cross traffic (they see more loss), but no collapse occurs —\n"
              "the single-bottleneck assumption is a modeling convenience, not a\n"
              "correctness requirement.\n");
  return 0;
}
