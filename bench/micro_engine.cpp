// Engine microbenchmarks (google-benchmark): event scheduling, cancel and
// reap throughput, steady-state schedule->fire, parallel sweep dispatch,
// and end-to-end simulated-seconds-per-wall-second for a reference dumbbell.
//
// Emit machine-readable numbers with --benchmark_format=json; the repo's
// BENCH_engine.json tracks these results across engine changes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "experiment/long_flow_experiment.hpp"
#include "experiment/sweep.hpp"
#include "net/drop_tail_queue.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion_control.hpp"
#include "telemetry/sketch.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace rbs;

/// Root seed for every RNG a microbenchmark draws from. rbs-analyze rule R4
/// requires Rngs outside tests/ to fork from a named stream of a named seed
/// rather than being literal-seeded in place.
constexpr std::uint64_t kBenchSeed = 1;
constexpr std::uint64_t kRngBenchStream = 0xBE4C;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sim::Simulation sim;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.after(sim::SimTime::nanoseconds(i % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.scheduler().executed_events());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_SchedulerSteadyState(benchmark::State& state) {
  // The simulator's true hot path: a standing population of N events where
  // every fired event schedules its successor (packet arrivals, ACK clocks).
  const auto n = state.range(0);
  sim::Simulation sim;
  sim::Scheduler& sched = sim.scheduler();
  std::uint64_t fired = 0;
  struct Reschedule {
    sim::Scheduler* sched;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      sched->schedule_after(sim::SimTime::nanoseconds(500 + (*fired % 97)), *this);
    }
  };
  for (std::int64_t i = 0; i < n; ++i) {
    sched.schedule_after(sim::SimTime::nanoseconds(i % 97), Reschedule{&sched, &fired});
  }
  for (auto _ : state) {
    const auto target = sched.executed_events() + 10'000;
    while (sched.executed_events() < target) {
      sim.run_until(sim.now() + sim::SimTime::microseconds(1));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SchedulerSteadyState)->Arg(64)->Arg(4'096);

void backend_steady_state(benchmark::State& state, sim::SchedulerBackend backend) {
  // Same standing-population schedule->fire pattern as BM_SchedulerSteadyState
  // but with an explicit ready-queue backend and a TCP-like horizon mix: most
  // events reschedule a few tens of microseconds out (packet clocks), every
  // tenth jumps 200 ms (retransmission timers), so the wheel backend pays its
  // cascade machinery instead of a single hot bucket.
  const auto n = state.range(0);
  sim::Simulation sim{kBenchSeed, backend};
  sim::Scheduler& sched = sim.scheduler();
  std::uint64_t fired = 0;
  struct Reschedule {
    sim::Scheduler* sched;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      const auto dt = *fired % 10 == 0 ? sim::SimTime::milliseconds(200)
                                       : sim::SimTime::microseconds(10 + *fired % 77);
      sched->schedule_after(dt, *this);
    }
  };
  for (std::int64_t i = 0; i < n; ++i) {
    sched.schedule_after(sim::SimTime::microseconds(i % 97), Reschedule{&sched, &fired});
  }
  for (auto _ : state) {
    const auto target = sched.executed_events() + 10'000;
    while (sched.executed_events() < target) {
      sim.run_until(sim.now() + sim::SimTime::milliseconds(1));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}

void BM_SchedulerBackendHeap(benchmark::State& state) {
  backend_steady_state(state, sim::SchedulerBackend::kHeap);
}
BENCHMARK(BM_SchedulerBackendHeap)->Arg(300)->Arg(4'096);

void BM_SchedulerBackendWheel(benchmark::State& state) {
  backend_steady_state(state, sim::SchedulerBackend::kWheel);
}
BENCHMARK(BM_SchedulerBackendWheel)->Arg(300)->Arg(4'096);

void BM_SchedulerScheduleCancel(benchmark::State& state) {
  // The TCP retransmission-timer pattern: schedule a timer far out, cancel
  // and replace it on every ACK. Exercises cancel + reaping.
  sim::Simulation sim;
  sim::Scheduler& sched = sim.scheduler();
  sim::Scheduler::EventHandle timer;
  std::int64_t t = 0;
  for (auto _ : state) {
    timer.cancel();
    timer = sched.schedule_after(sim::SimTime::milliseconds(200), [] {});
    if (++t % 64 == 0) sim.run_until(sim.now() + sim::SimTime::microseconds(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerScheduleCancel);

void BM_ParallelSweepDispatch(benchmark::State& state) {
  // Dispatch overhead of the sweep runner on trivial points (the per-point
  // work here is ~zero, so this measures pool handoff cost).
  experiment::SweepRunner runner{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const auto results = runner.map<std::uint64_t>(64, [](std::size_t i) {
      sim::Rng rng{static_cast<std::uint64_t>(i) + 1};
      return rng.next_u64();
    });
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ParallelSweepDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{1024};
  net::Packet p;
  p.size_bytes = 1000;
  for (auto _ : state) {
    q.enqueue(p);
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng = sim::Rng{kBenchSeed}.fork(kRngBenchStream);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_CcaStep(benchmark::State& state) {
  // Per-ACK cost of each congestion-control strategy: the model update
  // (on_ack) plus window growth (on_acked_increase), with a loss event every
  // 8192 ACKs so the reduction/epoch paths stay in the profile. Arg indexes
  // all_flavors(); the label names the flavor. The Reno row is the cost the
  // pre-refactor inlined arithmetic paid; CUBIC adds the cubic-root epoch
  // math, BBR the max-filter and phase machine, DCTCP the EWMA fold.
  const auto flavor = tcp::all_flavors()[static_cast<std::size_t>(state.range(0))];
  const tcp::CcConfig cfg;
  const auto cc = tcp::make_congestion_control(flavor, cfg);
  tcp::CcContext ctx;
  ctx.srtt = sim::SimTime::milliseconds(50);
  ctx.min_rtt = ctx.srtt;
  ctx.has_rtt = true;
  std::int64_t una = 0;
  auto now = sim::SimTime::zero();
  for (auto _ : state) {
    now = now + sim::SimTime::microseconds(500);
    ++una;
    ctx.now = now;
    ctx.snd_una = una;
    ctx.snd_nxt = una + 100;
    ctx.in_flight = 100;
    cc->on_ack(ctx, 1, ctx.srtt, 0);
    cc->on_acked_increase(ctx, 1);
    if ((una & 8191) == 0) {
      cc->on_loss_detected(ctx);
      cc->on_recovery_exit(ctx);
    }
    benchmark::DoNotOptimize(cc->cwnd());
  }
  state.SetLabel(tcp::flavor_name(flavor));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CcaStep)->Arg(2)->Arg(3)->Arg(4)->Arg(5);  // newreno cubic bbr dctcp

void BM_DumbbellSimulatedSecond(benchmark::State& state) {
  // How long one simulated second of a loaded 50-flow OC3 dumbbell takes.
  for (auto _ : state) {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = static_cast<int>(state.range(0));
    cfg.buffer_packets = 100;
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(1);
    benchmark::DoNotOptimize(experiment::run_long_flow_experiment(cfg));
  }
}
BENCHMARK(BM_DumbbellSimulatedSecond)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_TelemetryOverhead(benchmark::State& state) {
  // Cost of the observability layer on a reference run. Arg selects the
  // level: 0 = telemetry off (the baseline every simulation pays — one null
  // check per would-be event), 1 = metrics sampling at 10 ms cadence,
  // 2 = sampling plus full event tracing into a ring session. The
  // acceptance bar: level 0 within 2% of the pre-telemetry engine baseline
  // (BENCH_engine.json).
  const int level = static_cast<int>(state.range(0));
  telemetry::TraceSession session{256 * 1024};  // ring reused across iterations
  for (auto _ : state) {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = 10;
    cfg.buffer_packets = 100;
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(1);
    if (level >= 1) {
      cfg.telemetry.metrics = true;
      cfg.telemetry.sample_interval = sim::SimTime::milliseconds(10);
    }
    if (level >= 2) {
      session.clear();
      cfg.telemetry.trace = &session;
    }
    benchmark::DoNotOptimize(experiment::run_long_flow_experiment(cfg));
  }
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_SketchRecord(benchmark::State& state) {
  // Record-path throughput of the DDSketch quantile sketch. Values are
  // drawn once into a table spanning ~5 decades (an FCT-shaped spread, so
  // collapse pressure is realistic) and replayed, so the loop measures
  // bucket indexing rather than RNG cost.
  sim::Rng rng = sim::Rng{kBenchSeed}.fork(kRngBenchStream + 1);
  std::vector<double> values(4096);
  for (auto& v : values) v = std::exp((rng.uniform() - 0.5) * 12.0);
  telemetry::QuantileSketch sketch{telemetry::QuantileSketch::Config{0.01, 2048}};
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.record(values[i++ & 4095]);
  }
  benchmark::DoNotOptimize(sketch.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SketchRecord);

void BM_FlowStatsOverhead(benchmark::State& state) {
  // Flow-stats rollup cost on the reference dumbbell. Arg 0 keeps telemetry
  // off entirely (the flag-off baseline the "existing outputs byte-identical,
  // overhead <= 0.1%" contract compares against); Arg 1 enables metrics plus
  // per-flow rollups, which adds one FlowObservation harvest per flow at
  // measurement end on top of level-1 sampling.
  const bool flow_stats = state.range(0) != 0;
  for (auto _ : state) {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = 10;
    cfg.buffer_packets = 100;
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(1);
    if (flow_stats) {
      cfg.telemetry.metrics = true;
      cfg.telemetry.flow_stats = true;
    }
    benchmark::DoNotOptimize(experiment::run_long_flow_experiment(cfg));
  }
}
BENCHMARK(BM_FlowStatsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
