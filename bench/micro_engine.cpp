// Engine microbenchmarks (google-benchmark): event scheduling, queue ops,
// and end-to-end simulated-seconds-per-wall-second for a reference dumbbell.
#include <benchmark/benchmark.h>

#include "experiment/long_flow_experiment.hpp"
#include "net/drop_tail_queue.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rbs;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sim::Simulation sim;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.after(sim::SimTime::nanoseconds(i % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.scheduler().executed_events());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{1024};
  net::Packet p;
  p.size_bytes = 1000;
  for (auto _ : state) {
    q.enqueue(p);
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_DumbbellSimulatedSecond(benchmark::State& state) {
  // How long one simulated second of a loaded 50-flow OC3 dumbbell takes.
  for (auto _ : state) {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = static_cast<int>(state.range(0));
    cfg.buffer_packets = 100;
    cfg.warmup = sim::SimTime::seconds(1);
    cfg.measure = sim::SimTime::seconds(1);
    benchmark::DoNotOptimize(experiment::run_long_flow_experiment(cfg));
  }
}
BENCHMARK(BM_DumbbellSimulatedSecond)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
