// Figure 8: minimum buffer so that short-flow AFCT is inflated by no more
// than 12.5% relative to an (effectively) infinite buffer, for bottlenecks
// of 40 / 80 / 200 Mb/s at load 0.8 — compared with the paper's M/G/1 model
// at P(Q > B) = 0.025.
//
// The headline: the required buffer is (nearly) independent of line rate —
// it depends only on load and burst size.
#include <cmath>
#include <cstdio>

#include "core/batch_queue.hpp"
#include "core/short_flow_model.hpp"
#include "experiment/cli.hpp"
#include "experiment/reporting.hpp"
#include "experiment/short_flow_experiment.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv,
      "Fig 8: minimum buffer for <=12.5% AFCT penalty, short flows, load 0.8");

  const double load = 0.8;
  const std::int64_t flow_packets = 62;  // bursts 2,4,8,16,32
  const auto bursts = core::burst_moments_for_flow(flow_packets);
  const double model_buffer = core::buffer_for_drop_probability(load, bursts, 0.025);

  std::printf("Figure 8 — short flows (%lld pkts, slow-start only), load %.1f\n",
              static_cast<long long>(flow_packets), load);
  std::printf("M/G/1 model (P(Q>B)=0.025): E[X]=%.1f, E[X^2]/E[X]=%.1f -> B = %.0f pkts\n",
              bursts.mean, bursts.ratio(), model_buffer);

  // Cross-check the bound against the exact M[X]/D/1 batch queue — the
  // queueing model itself, without the network around it.
  {
    core::BatchQueueConfig bq;
    bq.load = load;
    bq.burst_sizes = core::slow_start_bursts(flow_packets);
    bq.num_batches = opts.full ? 2'000'000 : 400'000;
    bq.seed = opts.seed;
    const auto exact = core::run_batch_queue(bq);
    const auto b = static_cast<std::size_t>(model_buffer);
    std::printf("exact M[X]/D/1 tail at the model buffer: P(Q>=%.0f) = %.4f vs the\n"
                "two-moment formula's 0.0250 — the formula approximates its own queueing\n"
                "model within ~%.1fx; the real network (below) sits far under both, because\n"
                "ACK clocking spaces a flow's bursts an RTT apart.\n\n",
                model_buffer, exact.tail[b],
                exact.tail[b] > 0 ? exact.tail[b] / 0.025 : 0.0);
  }

  experiment::TablePrinter table{{"bandwidth", "model B (pkts)", "measured min B (pkts)",
                                  "baseline AFCT (ms)", "AFCT at min B (ms)"}};
  std::string csv = "rate_bps,model_buffer,measured_buffer,baseline_afct_ms,afct_at_min_ms\n";

  const std::vector<double> rates =
      opts.full ? std::vector<double>{40e6, 80e6, 200e6} : std::vector<double>{40e6, 80e6, 200e6};

  // One independent study per line rate (baseline run + bisection + final
  // run), executed concurrently and reported in rate order.
  struct Fig8Row {
    experiment::ShortFlowExperimentResult baseline;
    std::int64_t min_b{0};
    experiment::ShortFlowExperimentResult at_min;
  };
  experiment::SweepRunner runner{opts.threads};
  const auto rows = runner.map<Fig8Row>(rates.size(), [&](std::size_t idx) {
    const double rate = rates[idx];
    experiment::ShortFlowExperimentConfig cfg;
    cfg.bottleneck_rate = core::BitsPerSec{rate};
    cfg.load = load;
    cfg.flow_packets = flow_packets;
    cfg.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
    cfg.seed = opts.seed;

    Fig8Row out;
    // Baseline: a buffer far beyond any excursion.
    cfg.buffer_packets = 4000;
    out.baseline = run_short_flow_experiment(cfg);
    out.min_b = experiment::min_buffer_for_afct(cfg, out.baseline.afct_seconds,
                                                /*afct_penalty=*/0.125,
                                                /*lo=*/5, /*hi=*/1200);
    cfg.buffer_packets = out.min_b;
    out.at_min = run_short_flow_experiment(cfg);
    std::fprintf(stderr, "  [fig8] finished %.0f Mb/s\n", rate / 1e6);
    return out;
  });

  for (std::size_t idx = 0; idx < rates.size(); ++idx) {
    const double rate = rates[idx];
    const auto& baseline = rows[idx].baseline;
    const auto min_b = rows[idx].min_b;
    const auto& at_min = rows[idx].at_min;

    table.add_row({experiment::format("%.0f Mb/s", rate / 1e6),
                   experiment::format("%.0f", model_buffer),
                   experiment::format("%lld", static_cast<long long>(min_b)),
                   experiment::format("%.1f", 1e3 * baseline.afct_seconds),
                   experiment::format("%.1f", 1e3 * at_min.afct_seconds)});
    csv += experiment::format("%.0f,%.0f,%lld,%.3f,%.3f\n", rate, model_buffer,
                              static_cast<long long>(min_b), 1e3 * baseline.afct_seconds,
                              1e3 * at_min.afct_seconds);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) {
    experiment::write_file(opts.csv_dir + "/fig8_short_flow_buffer.csv", csv);
    experiment::write_gnuplot_script(
        opts.csv_dir, "fig8_short_flow_buffer",
        "Short-flow buffer requirement vs line rate (Fig 8)", "line rate (b/s)",
        "buffer (pkts)", {{"M/G/1 model", 1, 2}, {"measured minimum", 1, 3}});
  }

  std::printf("expected shape (paper Fig 8): the measured minimum buffer is a few hundred\n"
              "packets, does NOT grow with line rate, and sits at or below the M/G/1 bound\n"
              "(the bound is conservative).\n");
  return 0;
}
