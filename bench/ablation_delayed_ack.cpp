// Ablation: delayed ACKs (RFC 1122) vs per-packet ACKs.
//
// The paper's ns-2 sinks ACKed every packet. Real receivers delay ACKs,
// which halves the ACK clock and smooths the send process slightly. The √n
// sizing conclusion should be insensitive to this.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: delayed ACKs vs immediate ACKs at sqrt-rule buffers");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 200 : 100;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto rule =
      core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(), base.num_flows, 1000);

  std::printf("Delayed-ACK sweep — OC3, n=%d, sqrt rule = %lld pkts\n\n", base.num_flows,
              static_cast<long long>(rule));
  experiment::TablePrinter table{{"buffer", "per-packet ACK util", "delayed ACK util",
                                  "per-packet loss", "delayed loss"}};
  std::string csv = "multiple,delayed,utilization,loss\n";

  // Flatten (buffer multiple) x (ACK policy) into independent sweep points;
  // run concurrently, report in the original nested order.
  const std::vector<double> mults{0.5, 1.0, 2.0, 3.0};
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::LongFlowExperimentResult>(
      mults.size() * 2, [&](std::size_t idx) {
        auto cfg = base;
        cfg.buffer_packets = std::max<std::int64_t>(
            4, static_cast<std::int64_t>(std::llround(mults[idx / 2] * rule)));
        cfg.sink.delayed_ack = (idx % 2 == 1);
        auto r = run_long_flow_experiment(cfg);
        if (idx % 2 == 1) std::fprintf(stderr, "  [delack] finished %.1fx\n", mults[idx / 2]);
        return r;
      });

  for (std::size_t m = 0; m < mults.size(); ++m) {
    const double mult = mults[m];
    const auto& immediate = results[m * 2];
    const auto& delayed = results[m * 2 + 1];

    table.add_row({experiment::format("%.1f x", mult),
                   experiment::format("%.2f%%", 100 * immediate.utilization),
                   experiment::format("%.2f%%", 100 * delayed.utilization),
                   experiment::format("%.3f%%", 100 * immediate.loss_rate),
                   experiment::format("%.3f%%", 100 * delayed.loss_rate)});
    csv += experiment::format("%.1f,0,%.4f,%.5f\n", mult, immediate.utilization,
                              immediate.loss_rate);
    csv += experiment::format("%.1f,1,%.4f,%.5f\n", mult, delayed.utilization,
                              delayed.loss_rate);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_delack.csv", csv);

  std::printf("expected shape: delayed ACKs track the per-packet column within a couple of\n"
              "points at every multiple — the sizing rule does not hinge on the ns-2 sink's\n"
              "ACK-every-packet behaviour.\n");
  return 0;
}
