// Ablation: how much RTT heterogeneity does desynchronization need?
//
// §3's argument rests on flows being desynchronized, citing [10]: "small
// variations in RTT or processing time are sufficient to prevent
// synchronization". We sweep the spread of access delays from none (all
// flows identical) to wide, at a fixed √n-rule buffer, and measure both the
// synchronization metrics and the utilization cost of lockstep sawtooths.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"
#include "stats/synchronization.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: RTT spread vs synchronization (Section 3)");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 100 : 50;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 30);
  base.cwnd_sample_interval = sim::SimTime::milliseconds(50);
  base.sample_per_flow_cwnd = true;
  base.seed = opts.seed;

  // Keep the mean access delay at 29 ms (mean RTT 80 ms) while varying the
  // spread around it.
  struct Spread {
    const char* name;
    sim::SimTime lo;
    sim::SimTime hi;
  };
  const Spread spreads[] = {
      {"none (identical RTTs)", sim::SimTime::milliseconds(29), sim::SimTime::milliseconds(29)},
      {"±2 ms", sim::SimTime::milliseconds(27), sim::SimTime::milliseconds(31)},
      {"±10 ms", sim::SimTime::milliseconds(19), sim::SimTime::milliseconds(39)},
      {"±24 ms (default)", sim::SimTime::milliseconds(5), sim::SimTime::milliseconds(53)},
  };

  const auto rule = core::sqrt_rule_packets(0.080, base.bottleneck_rate.bps(),
                                            base.num_flows, 1000);
  std::printf("RTT spread sweep — OC3, n=%d, buffer = RTT*C/sqrt(n) = %lld pkts\n\n",
              base.num_flows, static_cast<long long>(rule));

  experiment::TablePrinter table{{"spread", "pairwise corr", "utilization", "loss"}};
  std::string csv = "spread_ms,pairwise_corr,utilization,loss\n";

  // One independent simulation per spread, run concurrently on the sweep
  // pool, reported in spread order.
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::LongFlowExperimentResult>(
      std::size(spreads), [&](std::size_t idx) {
        const Spread& s = spreads[idx];
        auto cfg = base;
        cfg.access_delay_min = s.lo;
        cfg.access_delay_max = s.hi;
        cfg.buffer_packets = rule;
        auto r = run_long_flow_experiment(cfg);
        std::fprintf(stderr, "  [spread] finished %s\n", s.name);
        return r;
      });

  for (std::size_t idx = 0; idx < std::size(spreads); ++idx) {
    const Spread& s = spreads[idx];
    const auto& r = results[idx];
    const double corr = stats::mean_pairwise_correlation(r.per_flow_cwnd);

    table.add_row({s.name, experiment::format("%.3f", corr),
                   experiment::format("%.2f%%", 100 * r.utilization),
                   experiment::format("%.3f%%", 100 * r.loss_rate)});
    csv += experiment::format("%.1f,%.4f,%.4f,%.5f\n",
                              (s.hi - s.lo).to_seconds() * 500.0, corr, r.utilization,
                              r.loss_rate);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_rtt_spread.csv", csv);

  std::printf("expected shape (§3, [10]): identical RTTs leave residual synchronization\n"
              "(higher correlation, lower utilization at the same buffer); even a few\n"
              "milliseconds of spread collapse the correlation, and utilization recovers —\n"
              "staggered start times alone already break most of the lockstep.\n");
  return 0;
}
