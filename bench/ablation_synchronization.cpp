// §3 ablation: TCP window synchronization versus the number of flows.
//
// The paper: in-phase synchronization is common below ~100 concurrent flows
// and essentially gone above ~500; desynchronization is what makes the
// aggregate window Gaussian and the √n rule work. We sample per-flow
// congestion windows and report the mean pairwise correlation and the
// coincidence of window-halving events.
#include <cmath>
#include <cstdio>

#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"
#include "stats/gaussian_fit.hpp"
#include "stats/synchronization.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: window synchronization vs number of flows (Section 3)");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 30);
  base.cwnd_sample_interval = sim::SimTime::milliseconds(50);
  base.sample_per_flow_cwnd = true;
  base.seed = opts.seed;

  const auto counts = opts.full ? std::vector<int>{2, 5, 10, 30, 100, 300, 500}
                                : std::vector<int>{2, 5, 10, 30, 100, 200};

  std::printf("Synchronization vs n — OC3, buffer = 1x RTT*C/sqrt(n)\n\n");
  experiment::TablePrinter table{{"n", "pairwise corr", "halving coincidence",
                                  "KS dist of sum(W)", "utilization"}};
  std::string csv = "n,pairwise_correlation,halving_coincidence,ks_distance,utilization\n";

  // One independent simulation per flow count; run them concurrently and
  // report in count order.
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::LongFlowExperimentResult>(
      counts.size(), [&](std::size_t idx) {
        const int n = counts[idx];
        auto cfg = base;
        cfg.num_flows = n;
        cfg.buffer_packets = std::max<std::int64_t>(
            4, static_cast<std::int64_t>(std::llround(1550.0 / std::sqrt(static_cast<double>(n)))));
        auto r = run_long_flow_experiment(cfg);
        std::fprintf(stderr, "  [sync] finished n=%d\n", n);
        return r;
      });

  for (std::size_t idx = 0; idx < counts.size(); ++idx) {
    const int n = counts[idx];
    const auto& r = results[idx];
    const double corr = stats::mean_pairwise_correlation(r.per_flow_cwnd);
    // Halvings of synchronized flows land within ~one RTT of each other,
    // i.e. ~2 samples at 50 ms. Keep the window tight: with hundreds of
    // flows halving frequently, a wide window manufactures coincidences.
    const double coincidence = stats::halving_coincidence(r.per_flow_cwnd, /*tolerance=*/2);
    const auto fit = stats::fit_gaussian(r.total_cwnd.values());

    table.add_row({experiment::format("%d", n), experiment::format("%.3f", corr),
                   experiment::format("%.3f", coincidence),
                   experiment::format("%.3f", fit.ks_distance),
                   experiment::format("%.1f%%", 100 * r.utilization)});
    csv += experiment::format("%d,%.4f,%.4f,%.4f,%.4f\n", n, corr, coincidence,
                              fit.ks_distance, r.utilization);
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_sync.csv", csv);

  std::printf("expected shape (§3): pairwise correlation (the headline sync measure) falls\n"
              "from ~1 toward 0 as n grows, and the aggregate window becomes more Gaussian\n"
              "(small KS) — why the sqrt(n) rule works at backbone flow counts.\n"
              "notes: halving coincidence is a stricter event-level measure and is noisy at\n"
              "small n, where a drop-tail overflow often clips only one flow's burst;\n"
              "utilization at n <= 10 is a lower bound because an OC3 congestion-avoidance\n"
              "ramp takes minutes, longer than this bench's measurement window.\n");
  return 0;
}
