// Ablation: does the √n result depend on the TCP flavor?
//
// The paper's simulations used ns-2's Reno-family TCP. We sweep Tahoe /
// Reno / NewReno over buffer multiples of RTT·C/√n; the sizing story should
// be flavor-insensitive (all are AIMD with the same sawtooth geometry),
// with Tahoe paying a small throughput tax for its slow-start restarts.
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/cli.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/sweep.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const auto opts = experiment::parse_cli(
      argc, argv, "Ablation: TCP flavor (Tahoe/Reno/NewReno) vs buffer multiple");

  experiment::LongFlowExperimentConfig base;
  base.bottleneck_rate = core::BitsPerSec{155e6};
  base.num_flows = opts.full ? 200 : 100;
  base.warmup = sim::SimTime::seconds(opts.full ? 20 : 10);
  base.measure = sim::SimTime::seconds(opts.full ? 60 : 25);
  base.seed = opts.seed;

  const double rtt_sec = 0.080;
  const auto rule =
      core::sqrt_rule_packets(rtt_sec, base.bottleneck_rate.bps(), base.num_flows, 1000);

  struct Flavor {
    const char* name;
    tcp::TcpFlavor flavor;
  };
  const Flavor flavors[] = {{"tahoe", tcp::TcpFlavor::kTahoe},
                            {"reno", tcp::TcpFlavor::kReno},
                            {"newreno", tcp::TcpFlavor::kNewReno}};

  std::printf("TCP flavor sweep — OC3, n=%d, sqrt rule = %lld pkts\n\n", base.num_flows,
              static_cast<long long>(rule));
  experiment::TablePrinter table{{"buffer", "tahoe util", "reno util", "newreno util",
                                  "tahoe loss", "reno loss", "newreno loss"}};
  std::string csv = "multiple,flavor,utilization,loss\n";

  // Flatten (buffer multiple) x (flavor) into one pool of independent
  // points; run concurrently, report in the original nested order.
  const std::vector<double> mults{0.5, 1.0, 2.0};
  const std::size_t num_flavors = std::size(flavors);
  experiment::SweepRunner runner{opts.threads};
  const auto results = runner.map<experiment::LongFlowExperimentResult>(
      mults.size() * num_flavors, [&](std::size_t idx) {
        auto cfg = base;
        cfg.buffer_packets = std::max<std::int64_t>(
            4, static_cast<std::int64_t>(std::llround(mults[idx / num_flavors] * rule)));
        cfg.tcp.flavor = flavors[idx % num_flavors].flavor;
        return run_long_flow_experiment(cfg);
      });

  for (std::size_t m = 0; m < mults.size(); ++m) {
    const double mult = mults[m];
    std::vector<std::string> row{experiment::format("%.1f x", mult)};
    std::vector<std::string> losses;
    for (std::size_t f = 0; f < num_flavors; ++f) {
      const auto& r = results[m * num_flavors + f];
      row.push_back(experiment::format("%.2f%%", 100 * r.utilization));
      losses.push_back(experiment::format("%.3f%%", 100 * r.loss_rate));
      csv += experiment::format("%.1f,%s,%.4f,%.5f\n", mult, flavors[f].name, r.utilization,
                                r.loss_rate);
    }
    row.insert(row.end(), losses.begin(), losses.end());
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  if (opts.want_csv()) experiment::write_file(opts.csv_dir + "/ablation_flavor.csv", csv);

  std::printf("expected shape: all three flavors reach ~full utilization by 2x the sqrt\n"
              "rule; Tahoe trails slightly at small buffers (slow-start restarts), so the\n"
              "sizing rule is a property of AIMD, not of a particular recovery scheme.\n");
  return 0;
}
