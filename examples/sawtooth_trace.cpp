// sawtooth_trace — reproduce the paper's Figure 3 trace for your own link.
//
// Runs one long-lived TCP flow over a configurable bottleneck and writes
// CSV traces of the congestion window W(t) and queue occupancy Q(t), plus an
// ASCII rendering so the sawtooth is visible without plotting.
//
//   $ ./sawtooth_trace                # 10 Mb/s, RTT 92 ms, B = BDP
//   $ ./sawtooth_trace 0.25          # B = BDP/4 (Figure 4, underbuffered)
//   $ ./sawtooth_trace 2.0 traces/   # B = 2*BDP, CSVs into traces/
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiment/reporting.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulation.hpp"
#include "stats/time_series.hpp"
#include "stats/utilization.hpp"
#include "tcp/tcp_sink.hpp"
#include "tcp/tcp_source.hpp"

int main(int argc, char** argv) {
  using namespace rbs;

  const double buffer_multiple = argc > 1 ? std::atof(argv[1]) : 1.0;
  const std::string out_dir = argc > 2 ? argv[2] : "";

  sim::Simulation sim{1};
  net::DumbbellConfig topo_cfg;
  topo_cfg.num_leaves = 1;
  topo_cfg.bottleneck_rate = core::BitsPerSec{10e6};
  topo_cfg.bottleneck_delay = sim::SimTime::milliseconds(10);
  topo_cfg.access_delays = {sim::SimTime::milliseconds(35)};  // RTT = 92 ms
  const double bdp = 0.092 * 10e6 / 8000.0;                   // 115 packets
  topo_cfg.buffer_packets =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(buffer_multiple * bdp + 0.5));
  net::Dumbbell topo{sim, topo_cfg};

  tcp::TcpSink sink{sim, topo.receiver(0), 1};
  tcp::TcpSource source{sim, topo.sender(0), topo.receiver(0).id(), 1, tcp::TcpConfig{}};
  source.start(sim::SimTime::zero());

  // Let the slow-start transient die down, then trace 40 seconds.
  sim.run_until(sim::SimTime::seconds(25));
  stats::UtilizationMeter meter{sim, topo.bottleneck()};
  meter.begin();
  stats::PeriodicSampler window{sim, sim::SimTime::milliseconds(25),
                                [&] { return source.cwnd(); }};
  stats::PeriodicSampler queue{sim, sim::SimTime::milliseconds(25), [&] {
    return static_cast<double>(topo.bottleneck().occupancy_packets());
  }};
  window.start(sim.now());
  queue.start(sim.now());
  sim.run_until(sim::SimTime::seconds(65));

  std::printf("single TCP flow, 10 Mb/s bottleneck, RTT 92 ms, BDP = 115 pkts\n");
  std::printf("buffer = %.2f x BDP = %lld pkts -> utilization %.2f%%\n\n", buffer_multiple,
              static_cast<long long>(topo_cfg.buffer_packets), 100.0 * meter.utilization());

  // ASCII strip chart, one row per 0.5 s.
  const auto& w = window.series().points();
  const auto& q = queue.series().points();
  const double w_max = window.series().summary().max();
  std::printf("%6s  %-40s  %-20s\n", "t(s)", "cwnd (# = packets)", "queue");
  for (std::size_t i = 0; i < w.size(); i += 20) {
    const auto bar = [](double v, double vmax, int width) {
      const int n = vmax > 0 ? static_cast<int>(v / vmax * width + 0.5) : 0;
      return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
    };
    std::printf("%6.1f  %-40s  %-20s\n", w[i].time.to_seconds(),
                bar(w[i].value, w_max, 40).c_str(),
                bar(q[i].value, static_cast<double>(topo_cfg.buffer_packets), 20).c_str());
  }

  if (!out_dir.empty()) {
    experiment::write_file(out_dir + "/window.csv",
                           "time_sec,cwnd_pkts\n" + window.series().to_csv());
    experiment::write_file(out_dir + "/queue.csv",
                           "time_sec,queue_pkts\n" + queue.series().to_csv());
    std::printf("\nwrote %s/window.csv and %s/queue.csv\n", out_dir.c_str(), out_dir.c_str());
  }
  return 0;
}
