// lab_testbed — recreate the paper's §5.2 laboratory methodology in
// simulation: a Harpoon-style closed-loop session workload (file transfers
// with think times, heavy-tailed sizes) offered to a router whose interface
// queue is resized between runs, with a packet tracer attached for
// spot-checks — the workflow of the paper's Cisco GSR experiment.
//
//   $ ./lab_testbed              # sweep 0.5x/1x/2x/3x of the sqrt rule
//   $ ./lab_testbed --trace      # also dump the first 30 bottleneck events
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/sizing_rules.hpp"
#include "experiment/reporting.hpp"
#include "net/dumbbell.hpp"
#include "net/packet_tracer.hpp"
#include "sim/simulation.hpp"
#include "stats/utilization.hpp"
#include "traffic/session_workload.hpp"

int main(int argc, char** argv) {
  using namespace rbs;
  const bool want_trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;

  // The testbed: OC3 bottleneck, 240 user sessions with heavy-tailed file
  // sizes (mean ~60 pkts) and 300 ms think time — offered demand right at
  // link capacity, so the closed loop keeps the bottleneck congested.
  const double rate = 155e6;
  const int leaves = 60;
  const int sessions_per_leaf = 4;
  const double rtt_sec = 0.080;
  const int effective_flows = leaves * sessions_per_leaf;
  const auto rule = core::sqrt_rule_packets(rtt_sec, rate, effective_flows, 1000);

  std::printf("lab testbed — OC3, %d Harpoon-style sessions (Pareto sizes, 0.3 s think),\n"
              "interface queue resized between runs; sqrt rule = %lld pkts\n\n",
              effective_flows, static_cast<long long>(rule));

  experiment::TablePrinter table{{"queue (pkts)", "multiple", "utilization",
                                  "transfers done", "median-ish AFCT (ms)", "drops"}};

  for (const double mult : {0.5, 1.0, 2.0, 3.0}) {
    sim::Simulation sim{7};
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_leaves = leaves;
    topo_cfg.bottleneck_rate = core::BitsPerSec{rate};
    topo_cfg.buffer_packets =
        std::max<std::int64_t>(4, static_cast<std::int64_t>(std::llround(mult * rule)));
    net::Dumbbell topo{sim, topo_cfg};

    net::PacketTracer tracer{sim, /*max_records=*/want_trace ? 30u : 1u};
    if (want_trace && mult == 1.0) tracer.attach(topo.bottleneck());

    traffic::ParetoFlowSize sizes{1.1, 10, 50'000};
    traffic::SessionWorkloadConfig wl_cfg;
    wl_cfg.sessions_per_leaf = sessions_per_leaf;
    wl_cfg.mean_think_time_sec = 0.3;
    traffic::SessionWorkload workload{sim, topo, sizes, wl_cfg};

    sim.run_until(sim::SimTime::seconds(10));  // warm-up
    topo.bottleneck().reset_stats();
    const auto measure_start = sim.now();
    stats::UtilizationMeter meter{sim, topo.bottleneck()};
    meter.begin();
    sim.run_until(sim::SimTime::seconds(40));

    const auto afct = workload.completions().afct_filtered(measure_start);
    table.add_row(
        {experiment::format("%lld", static_cast<long long>(topo_cfg.buffer_packets)),
         experiment::format("%.1f x", mult),
         experiment::format("%.2f%%", 100 * meter.utilization()),
         experiment::format("%llu", static_cast<unsigned long long>(afct.count())),
         experiment::format("%.0f", 1e3 * afct.mean()),
         experiment::format("%llu",
                            static_cast<unsigned long long>(
                                topo.bottleneck().queue().stats().dropped_packets))});

    if (want_trace && mult == 1.0) {
      std::printf("first bottleneck events at 1.0x (tcpdump-style):\n%s\n",
                  tracer.to_text().c_str());
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("reading the table: like the paper's GSR runs, utilization climbs steeply\n"
              "around the sqrt rule and flattens by 2-3x. Because sessions are closed-loop\n"
              "(users pause between transfers, and slow transfers delay the next request),\n"
              "sub-rule buffers also show up as fewer completed transfers and longer AFCT —\n"
              "loss-driven timeouts hurt a closed loop more than queueing delay does.\n");
  return 0;
}
