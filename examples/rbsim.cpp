// rbsim — config-driven buffer-sizing simulator.
//
// Runs one experiment described by key=value pairs (from the command line or
// a config file, one pair per line; '#' comments allowed) and prints a full
// report: utilization, loss, queueing delay percentiles, fairness, AFCT, and
// the model predictions side by side.
//
//   $ ./rbsim mode=long flows=200 rate_mbps=155 buffer=auto
//   $ ./rbsim mode=mixed flows=50 short_load=0.2 buffer=1550 duration=30
//   $ ./rbsim config.txt
//
// Keys (defaults in brackets):
//   mode        long | short | mixed | trace  [long]
//   trace       trace file to replay (mode=trace; see traffic/trace_workload.hpp)
//   rate_mbps   bottleneck rate               [155]
//   flows       long-lived TCP flows          [100]
//   buffer      packets, or "auto" = sqrt rule, or "bdp" [auto];
//               a comma list (e.g. buffer=50,100,bdp) sweeps the points in
//               parallel (modes long/short/mixed) and prints one row each
//   threads     sweep worker threads (0 = RBS_THREADS env, else all cores) [0]
//   backend     wheel | heap | auto  scheduler ready-queue backend [wheel];
//               both structures fire events in bitwise-identical order (the
//               heap is the reference, the timing wheel the fast default),
//               so this only changes engine speed, never results; auto picks
//               per run from the schedule horizon (short-horizon runs whose
//               whole schedule fits one wheel bucket get the heap)
//   duration    measurement seconds           [20]
//   warmup      warm-up seconds               [10]
//   short_load  short-flow offered load       [0.2, mixed/short modes]
//   flow_len    short-flow length in packets  [62]
//   red         0|1 use RED at the bottleneck [0]
//   ecn         0|1 RED marks instead of drops [0]
//   cca         tahoe | reno | newreno | cubic | bbr | dctcp  congestion
//               control for the TCP senders (long/mixed modes) [newreno].
//               cca=dctcp additionally switches the bottleneck (long mode)
//               to step-marking RED with threshold K = buffer/2, the
//               operating point DCTCP assumes (experiment::apply_cca_profile)
//   pacing      0|1 paced TCP senders         [0]
//   delack      0|1 delayed ACKs              [0]
//   seed        RNG seed                      [1]
//   paranoia    0|1 run the invariant auditor (also --paranoia): every 50k
//               events every registered subsystem re-verifies its internal
//               state (queue conservation, heap order, TCP sequence bounds)
//               and the run aborts with a report on any violation [0]
//   --faults FILE  (or faults=FILE) arm a fault schedule against the
//               topology: link outages/flaps, rate brown-outs, delay
//               surges, loss bursts, queue freezes. One directive per
//               line; see docs/faults.md for the format. Applies to every
//               mode (and to every point of a buffer sweep).
//
// Telemetry (see docs/observability.md):
//   --metrics PATH        (or metrics=PATH) collect the metrics registry and
//                         the sampled time series; writes a JSON document
//                         {"snapshot":…,"series":…} to PATH plus a sibling
//                         PATH.series.csv. A buffer sweep writes per-point
//                         artifacts PATH.point<N>.{json,csv,gp} instead.
//   --trace PATH          (or trace_out=PATH) record packet/TCP/queue events
//                         and write Chrome trace_event JSON to PATH (open in
//                         Perfetto / chrome://tracing). Single-point runs
//                         only — a parallel sweep would interleave sessions.
//   --sample-interval S   (or sample_interval=S) series cadence, seconds [0.1]
//   --profile             (or profile=1) attach the scheduler profiler and
//                         print per-event-class timing; sweeps additionally
//                         get a live progress line and per-worker
//                         utilization
//   --flow-stats          (or flow_stats=1) collect per-flow rollups: FCT /
//                         goodput / retransmit / peak-cwnd sketches plus the
//                         "who hogs the bottleneck" top-K table. Printed as
//                         a table and, with --metrics, embedded in the JSON
//                         document under "flow_stats". Off by default; when
//                         off, every output byte matches a build without the
//                         feature.
//   --post-mortem PATH    (or post_mortem=PATH) arm the flight recorder: on
//                         an invariant-auditor violation or uncaught
//                         exception, dump recent trace events, a metrics
//                         snapshot, and live queue/scheduler state as
//                         deterministic JSON to PATH (single-point runs)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/recommendation.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/cca_matrix.hpp"
#include "experiment/long_flow_experiment.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/reporting.hpp"
#include "experiment/short_flow_experiment.hpp"
#include "experiment/sweep.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_schedule.hpp"
#include "stats/utilization.hpp"
#include "telemetry/sweep_profile.hpp"
#include "telemetry/trace.hpp"
#include "traffic/trace_workload.hpp"

namespace {

using KeyValues = std::map<std::string, std::string>;

void parse_pair(const std::string& token, KeyValues& out) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    std::fprintf(stderr, "rbsim: ignoring malformed option '%s'\n", token.c_str());
    return;
  }
  out[token.substr(0, eq)] = token.substr(eq + 1);
}

bool load_config_file(const std::string& path, KeyValues& out) {
  std::ifstream in{path};
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens{line};
    std::string token;
    while (tokens >> token) parse_pair(token, out);
  }
  return true;
}

double get_num(const KeyValues& kv, const std::string& key, double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : std::atof(it->second.c_str());
}

std::string get_str(const KeyValues& kv, const std::string& key, const std::string& fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

int run_rbsim(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_rbsim(argc, argv);
  } catch (const std::exception& e) {
    // Invariant-auditor reports (and any other fatal error) land here.
    std::fprintf(stderr, "rbsim: fatal: %s\n", e.what());
    return 1;
  }
}

namespace {

int run_rbsim(int argc, char** argv) {
  using namespace rbs;

  KeyValues kv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: rbsim [--paranoia] [--profile] [--metrics PATH] [--trace PATH]\n"
                  "             [--sample-interval SEC] [--faults FILE] [--flow-stats]\n"
                  "             [--post-mortem PATH] [key=value ...] [config-file]\n"
                  "keys include mode=long|short|mixed|trace, buffer=N|auto|bdp[,..],\n"
                  "cca=tahoe|reno|newreno|cubic|bbr|dctcp (sender congestion control),\n"
                  "backend=wheel|heap|auto (scheduler ready-queue; identical results,\n"
                  "different speed), threads=N, seed=N\n"
                  "see the header of examples/rbsim.cpp for the full key list\n");
      return 0;
    }
    if (arg == "--paranoia") {
      kv["paranoia"] = "1";
      continue;
    }
    if (arg == "--profile") {
      kv["profile"] = "1";
      continue;
    }
    if (arg == "--flow-stats") {
      kv["flow_stats"] = "1";
      continue;
    }
    // Flags taking a value in the following argv slot. "--trace" maps to the
    // kv key "trace_out" because plain "trace" already names the replay
    // input file of mode=trace.
    if (arg == "--metrics" || arg == "--trace" || arg == "--sample-interval" ||
        arg == "--faults" || arg == "--post-mortem") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rbsim: %s needs a value\n", arg.c_str());
        return 2;
      }
      const char* key = arg == "--metrics"           ? "metrics"
                        : arg == "--trace"           ? "trace_out"
                        : arg == "--sample-interval" ? "sample_interval"
                        : arg == "--post-mortem"     ? "post_mortem"
                                                     : "faults";
      kv[key] = argv[++i];
      continue;
    }
    if (arg.find('=') == std::string::npos) {
      if (!load_config_file(arg, kv)) {
        std::fprintf(stderr, "rbsim: cannot read config file '%s'\n", arg.c_str());
        return 2;
      }
    } else {
      parse_pair(arg, kv);
    }
  }

  const std::string mode = get_str(kv, "mode", "long");
  const double rate_bps = get_num(kv, "rate_mbps", 155.0) * 1e6;
  const int flows = static_cast<int>(get_num(kv, "flows", 100));
  const double duration = get_num(kv, "duration", 20.0);
  const double warmup = get_num(kv, "warmup", 10.0);
  const auto seed = static_cast<std::uint64_t>(get_num(kv, "seed", 1));
  const double rtt_sec = 0.080;  // topology default

  const auto sqrt_rule = core::sqrt_rule_packets(rtt_sec, rate_bps, std::max(flows, 1), 1000);
  const auto bdp = core::rule_of_thumb_packets(rtt_sec, rate_bps, 1000);

  // `buffer` may be a comma-separated list; more than one entry turns the
  // run into a parallel sweep over buffer sizes.
  std::vector<std::int64_t> buffers;
  {
    std::istringstream list{get_str(kv, "buffer", "auto")};
    std::string item;
    while (std::getline(list, item, ',')) {
      if (item.empty()) continue;
      if (item == "auto") {
        buffers.push_back(sqrt_rule);
      } else if (item == "bdp") {
        buffers.push_back(bdp);
      } else {
        char* end = nullptr;
        const long long v = std::strtoll(item.c_str(), &end, 10);
        if (end == item.c_str() || *end != '\0' || v <= 0) {
          std::fprintf(stderr, "rbsim: bad buffer entry '%s' (want a positive packet count, "
                               "'auto', or 'bdp')\n", item.c_str());
          return 2;
        }
        buffers.push_back(v);
      }
    }
    if (buffers.empty()) buffers.push_back(sqrt_rule);
  }
  const std::int64_t buffer = buffers.front();
  const int threads = static_cast<int>(get_num(kv, "threads", 0));

  // Scheduler ready-queue backend. Both fire bitwise-identically; the wheel
  // is the fast default and the heap the reference structure.
  const std::string backend_str = get_str(kv, "backend", "wheel");
  sim::SchedulerBackend backend = sim::SchedulerBackend::kWheel;
  if (backend_str == "heap") {
    backend = sim::SchedulerBackend::kHeap;
  } else if (backend_str == "auto") {
    backend = sim::SchedulerBackend::kAuto;
  } else if (backend_str != "wheel") {
    std::fprintf(stderr, "rbsim: unknown backend '%s' (want wheel, heap, or auto)\n",
                 backend_str.c_str());
    return 2;
  }
  const bool paranoia = get_num(kv, "paranoia", 0) > 0;
  if (paranoia) std::printf("rbsim: paranoia mode on — invariant auditor attached\n");

  // Congestion-control flavor for the TCP senders (long/mixed modes).
  std::optional<tcp::TcpFlavor> cca;
  const std::string cca_str = get_str(kv, "cca", "");
  if (!cca_str.empty()) {
    cca = tcp::flavor_from_name(cca_str);
    if (!cca) {
      std::fprintf(stderr, "rbsim: unknown cca '%s' (want tahoe, reno, newreno, cubic, bbr, or dctcp)\n",
                   cca_str.c_str());
      return 2;
    }
  }

  // Fault schedule, applied identically to every mode (and every sweep
  // point). Parse errors are fatal and name the offending line.
  fault::FaultSchedule faults;
  const std::string faults_path = get_str(kv, "faults", "");
  if (!faults_path.empty()) {
    faults = fault::FaultSchedule::parse_file(faults_path);
    std::printf("rbsim: fault schedule '%s' armed — %zu events, horizon %.1f s\n",
                faults_path.c_str(), faults.size(), faults.horizon().to_seconds());
  }

  // Telemetry configuration shared by every mode. The trace session is a
  // single shared ring buffer, so it only attaches to single-point runs; a
  // parallel sweep's concurrent simulations each get their own registry and
  // series instead (written out per point below).
  const std::string metrics_path = get_str(kv, "metrics", "");
  const std::string trace_path = get_str(kv, "trace_out", "");
  const bool profile = get_num(kv, "profile", 0) > 0;
  experiment::TelemetryConfig tele_cfg;
  tele_cfg.metrics = !metrics_path.empty();
  tele_cfg.sample_interval = sim::SimTime::from_seconds(get_num(kv, "sample_interval", 0.1));
  tele_cfg.profile = profile;
  tele_cfg.flow_stats = get_num(kv, "flow_stats", 0) > 0;
  // The flight recorder writes one post-mortem file, so a sweep's concurrent
  // points would race on it; single-point runs only, like --trace.
  const std::string post_mortem_path = get_str(kv, "post_mortem", "");
  if (!post_mortem_path.empty()) {
    if (buffers.size() > 1) {
      std::fprintf(stderr,
                   "rbsim: --post-mortem applies to single-point runs; ignored for sweeps\n");
    } else {
      tele_cfg.flight_recorder_path = post_mortem_path;
    }
  }
  std::unique_ptr<telemetry::TraceSession> trace_session;
  if (!trace_path.empty()) {
    if (buffers.size() > 1) {
      std::fprintf(stderr, "rbsim: --trace applies to single-point runs; ignored for sweeps\n");
    } else {
      trace_session = std::make_unique<telemetry::TraceSession>();
      tele_cfg.trace = trace_session.get();
    }
  }

  // Prints the per-flow rollup: headline counters, FCT/goodput quantiles,
  // and the heavy-hitter table. No-op unless --flow-stats collected one.
  const auto print_flow_stats = [](const experiment::TelemetryResult& t) {
    if (!t.flow_stats_collected) return;
    const auto& fs = t.flow_stats;
    std::printf("flow stats   : %llu flows (%llu completed), %llu rtx, %llu ECN marks\n",
                static_cast<unsigned long long>(fs.flows()),
                static_cast<unsigned long long>(fs.flows_completed()),
                static_cast<unsigned long long>(fs.total_retransmits()),
                static_cast<unsigned long long>(fs.total_ecn_marks()));
    if (fs.flows_completed() > 0) {
      std::printf("  fct        : p50 %.4f s, p99 %.4f s\n", fs.fct().quantile(0.50),
                  fs.fct().quantile(0.99));
    }
    if (fs.flows() > 0) {
      std::printf("  goodput    : p50 %.3f Mb/s   peak cwnd: p99 %.1f pkts\n",
                  fs.goodput().quantile(0.50) / 1e6, fs.peak_cwnd().quantile(0.99));
    }
    const auto hogs = fs.hogs().top(5);
    for (const auto& h : hogs) {
      std::printf("  hog flow %-8llu %10.3f MB acked (overcount <= %.3f MB)\n",
                  static_cast<unsigned long long>(h.key),
                  static_cast<double>(h.weight) / 1e6, static_cast<double>(h.error) / 1e6);
    }
  };

  // Serializes one run's metrics document. --flow-stats appends its rollup
  // as a third top-level key, so documents without it are byte-identical to
  // pre-flow-stats builds.
  const auto metrics_doc = [](const experiment::TelemetryResult& t) {
    std::string doc = "{\"snapshot\":" + t.snapshot.to_json() +
                      ",\"series\":" + t.series.to_json();
    if (t.flow_stats_collected) doc += ",\"flow_stats\":" + t.flow_stats.to_json();
    doc += "}\n";
    return doc;
  };

  // Writes the metrics/trace artifacts of a single-point run and prints the
  // profiler summary, all no-ops for whatever was not requested.
  const auto emit_telemetry = [&](const experiment::TelemetryResult& t) {
    if (!t.profile_summary.empty()) std::printf("\n%s", t.profile_summary.c_str());
    print_flow_stats(t);
    if (t.collected && !metrics_path.empty()) {
      if (experiment::write_file(metrics_path, metrics_doc(t)) &&
          experiment::write_file(metrics_path + ".series.csv", t.series.to_csv())) {
        std::printf("metrics      : %s (series: %s.series.csv)\n", metrics_path.c_str(),
                    metrics_path.c_str());
      }
    }
    if (trace_session && trace_session->write_chrome_json(trace_path)) {
      std::printf("trace        : %s (%zu events; open in Perfetto)\n", trace_path.c_str(),
                  trace_session->events().size());
    }
  };

  std::printf("rbsim: mode=%s rate=%.0f Mb/s flows=%d buffer=%lld pkts "
              "(sqrt rule %lld, RTT*C %lld)\n\n",
              mode.c_str(), rate_bps / 1e6, flows, static_cast<long long>(buffer),
              static_cast<long long>(sqrt_rule), static_cast<long long>(bdp));

  if (buffers.size() > 1) {
    // Buffer sweep: every point is an independent simulation, run across
    // the worker pool; rows print in list order, bitwise identical to a
    // serial (threads=1) run.
    experiment::SweepRunner runner{threads, paranoia};
    telemetry::SweepProfile sweep_prof{buffers.size(), profile};
    if (profile) {
      runner.set_observer(
          {[&](std::size_t i, int w) { sweep_prof.point_start(i, w); },
           [&](std::size_t i, int w) { sweep_prof.point_done(i, w); }});
    }

    // Per-point telemetry artifacts: each sweep point owns its Simulation
    // (and thus its registry/series), so --metrics out.json yields
    // out.json.point<N>.json plus a plottable out.point<N>.{csv,gp} pair.
    const auto emit_sweep_telemetry = [&](auto&& telemetry_of) {
      if (profile) {
        std::printf("\n%s", sweep_prof.summary().c_str());
        // Dispatch health: every worker should claim a similar share; one
        // worker owning almost all points means the batch was too small to
        // share or the helpers never woke in time.
        const auto dispatch = runner.dispatch_stats();
        std::printf("dispatch     :");
        for (std::size_t w = 0; w < dispatch.size(); ++w) {
          std::printf(" w%zu=%llu pts (%llu chunks)", w,
                      static_cast<unsigned long long>(dispatch[w].points),
                      static_cast<unsigned long long>(dispatch[w].chunks));
        }
        std::printf("\n");
      }
      if (metrics_path.empty()) return;
      const std::filesystem::path mp{metrics_path};
      const std::string dir = mp.has_parent_path() ? mp.parent_path().string() : std::string{"."};
      const std::string stem = mp.stem().string();
      bool ok = true;
      for (std::size_t i = 0; i < buffers.size(); ++i) {
        const experiment::TelemetryResult& t = telemetry_of(i);
        if (!t.collected) continue;
        const std::string tag = ".point" + std::to_string(i);
        ok = experiment::write_file(metrics_path + tag + ".json", metrics_doc(t)) &&
             experiment::write_series_artifacts(
                 dir, stem + tag,
                 "buffer=" + std::to_string(static_cast<long long>(buffers[i])) + " pkts",
                 t.series) &&
             ok;
      }
      if (ok) {
        std::printf("per-point telemetry: %s.point<N>.json (+ %s/%s.point<N>.{csv,gp})\n",
                    metrics_path.c_str(), dir.c_str(), stem.c_str());
      }
    };
    if (mode == "long") {
      experiment::LongFlowExperimentConfig cfg;
      cfg.num_flows = flows;
      cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
      cfg.warmup = sim::SimTime::from_seconds(warmup);
      cfg.measure = sim::SimTime::from_seconds(duration);
      cfg.record_delays = true;
      cfg.seed = seed;
      cfg.checked = paranoia;
      cfg.scheduler_backend = backend;
      if (get_num(kv, "red", 0) > 0) cfg.discipline = net::QueueDiscipline::kRed;
      if (get_num(kv, "ecn", 0) > 0) {
        cfg.discipline = net::QueueDiscipline::kRed;
        cfg.red.ecn_marking = true;
      }
      cfg.tcp.pacing = get_num(kv, "pacing", 0) > 0;
      cfg.sink.delayed_ack = get_num(kv, "delack", 0) > 0;
      cfg.telemetry = tele_cfg;
      cfg.telemetry.trace = nullptr;  // shared session; single-point runs only
      cfg.faults = faults;

      const auto results = runner.map<experiment::LongFlowExperimentResult>(
          buffers.size(), [&](std::size_t i) {
            auto point = cfg;
            point.buffer_packets = buffers[i];
            // Per point, not once: DCTCP's marking threshold tracks the buffer.
            if (cca) experiment::apply_cca_profile(point, *cca, buffers[i]);
            return run_long_flow_experiment(point);
          });
      experiment::TablePrinter table{
          {"buffer (pkts)", "utilization", "loss", "mean queue", "p99 delay (ms)", "fairness"}};
      for (std::size_t i = 0; i < buffers.size(); ++i) {
        const auto& r = results[i];
        table.add_row({experiment::format("%lld", static_cast<long long>(buffers[i])),
                       experiment::format("%.2f%%", 100 * r.utilization),
                       experiment::format("%.3f%%", 100 * r.loss_rate),
                       experiment::format("%.1f", r.mean_queue_packets),
                       experiment::format("%.2f", 1e3 * r.delay_p99_sec),
                       experiment::format("%.3f", r.fairness)});
      }
      std::printf("%s\n", table.render().c_str());
      emit_sweep_telemetry([&](std::size_t i) -> const experiment::TelemetryResult& {
        return results[i].telemetry;
      });
      return 0;
    }
    if (mode == "short") {
      experiment::ShortFlowExperimentConfig cfg;
      cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
      cfg.load = get_num(kv, "short_load", 0.8);
      cfg.flow_packets = static_cast<std::int64_t>(get_num(kv, "flow_len", 62));
      cfg.warmup = sim::SimTime::from_seconds(warmup);
      cfg.measure = sim::SimTime::from_seconds(duration);
      cfg.seed = seed;
      cfg.checked = paranoia;
      cfg.scheduler_backend = backend;
      cfg.telemetry = tele_cfg;
      cfg.telemetry.trace = nullptr;
      cfg.faults = faults;

      const auto results = runner.map<experiment::ShortFlowExperimentResult>(
          buffers.size(), [&](std::size_t i) {
            auto point = cfg;
            point.buffer_packets = buffers[i];
            return run_short_flow_experiment(point);
          });
      experiment::TablePrinter table{
          {"buffer (pkts)", "utilization", "AFCT (ms)", "flows", "drop prob"}};
      for (std::size_t i = 0; i < buffers.size(); ++i) {
        const auto& r = results[i];
        table.add_row({experiment::format("%lld", static_cast<long long>(buffers[i])),
                       experiment::format("%.2f%%", 100 * r.utilization),
                       experiment::format("%.1f", 1e3 * r.afct_seconds),
                       experiment::format("%llu",
                                          static_cast<unsigned long long>(r.flows_completed)),
                       experiment::format("%.4f", r.drop_probability)});
      }
      std::printf("%s\n", table.render().c_str());
      emit_sweep_telemetry([&](std::size_t i) -> const experiment::TelemetryResult& {
        return results[i].telemetry;
      });
      return 0;
    }
    if (mode == "mixed") {
      experiment::MixedFlowExperimentConfig cfg;
      cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
      cfg.num_long_flows = flows;
      cfg.short_flow_load = get_num(kv, "short_load", 0.2);
      cfg.short_flow_packets = static_cast<std::int64_t>(get_num(kv, "flow_len", 62));
      cfg.warmup = sim::SimTime::from_seconds(warmup);
      cfg.measure = sim::SimTime::from_seconds(duration);
      cfg.seed = seed;
      cfg.checked = paranoia;
      cfg.scheduler_backend = backend;
      cfg.telemetry = tele_cfg;
      cfg.telemetry.trace = nullptr;
      cfg.faults = faults;

      const auto results = runner.map<experiment::MixedFlowExperimentResult>(
          buffers.size(), [&](std::size_t i) {
            auto point = cfg;
            point.buffer_packets = buffers[i];
            return run_mixed_flow_experiment(point);
          });
      experiment::TablePrinter table{{"buffer (pkts)", "utilization", "short AFCT (ms)",
                                      "long goodput (Mb/s)", "drop prob"}};
      for (std::size_t i = 0; i < buffers.size(); ++i) {
        const auto& r = results[i];
        table.add_row({experiment::format("%lld", static_cast<long long>(buffers[i])),
                       experiment::format("%.2f%%", 100 * r.utilization),
                       experiment::format("%.1f", 1e3 * r.afct_seconds),
                       experiment::format("%.1f", r.long_flow_throughput_bps / 1e6),
                       experiment::format("%.4f", r.drop_probability)});
      }
      std::printf("%s\n", table.render().c_str());
      emit_sweep_telemetry([&](std::size_t i) -> const experiment::TelemetryResult& {
        return results[i].telemetry;
      });
      return 0;
    }
    std::fprintf(stderr, "rbsim: buffer sweeps support modes long|short|mixed\n");
    return 2;
  }

  if (mode == "long") {
    experiment::LongFlowExperimentConfig cfg;
    cfg.num_flows = flows;
    cfg.buffer_packets = buffer;
    cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
    cfg.warmup = sim::SimTime::from_seconds(warmup);
    cfg.measure = sim::SimTime::from_seconds(duration);
    cfg.record_delays = true;
    cfg.seed = seed;
    cfg.checked = paranoia;
    cfg.scheduler_backend = backend;
    if (get_num(kv, "red", 0) > 0) cfg.discipline = net::QueueDiscipline::kRed;
    if (get_num(kv, "ecn", 0) > 0) {
      cfg.discipline = net::QueueDiscipline::kRed;
      cfg.red.ecn_marking = true;
    }
    cfg.tcp.pacing = get_num(kv, "pacing", 0) > 0;
    cfg.sink.delayed_ack = get_num(kv, "delack", 0) > 0;
    if (cca) experiment::apply_cca_profile(cfg, *cca, buffer);
    cfg.telemetry = tele_cfg;
    cfg.faults = faults;

    const auto r = run_long_flow_experiment(cfg);
    const core::LongFlowLink model{rate_bps, rtt_sec, flows, 1000};
    std::printf("utilization     : %.2f%%   (model predicts %.2f%%)\n",
                100 * r.utilization,
                100 * core::predicted_utilization(model, buffer));
    std::printf("loss rate       : %.3f%%  (model ~ %.3f%%)\n", 100 * r.loss_rate,
                100 * core::predicted_loss_rate(model, buffer));
    std::printf("queue occupancy : %.1f pkts mean (limit %lld)\n", r.mean_queue_packets,
                static_cast<long long>(buffer));
    std::printf("queue delay     : %.2f ms mean, %.2f ms p99\n", 1e3 * r.delay_mean_sec,
                1e3 * r.delay_p99_sec);
    std::printf("fairness (Jain) : %.3f over %d flows\n", r.fairness, flows);
    std::printf("tcp             : %llu timeouts, %llu fast retransmits, %llu ECN cuts\n",
                static_cast<unsigned long long>(r.tcp_stats.timeouts),
                static_cast<unsigned long long>(r.tcp_stats.fast_retransmits),
                static_cast<unsigned long long>(r.tcp_stats.ecn_reductions));
    if (!faults.empty()) {
      std::printf("faults          : %llu packets lost to injected faults\n",
                  static_cast<unsigned long long>(r.fault_drops));
    }
    emit_telemetry(r.telemetry);
    return 0;
  }

  if (mode == "short") {
    experiment::ShortFlowExperimentConfig cfg;
    cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
    cfg.buffer_packets = buffer;
    cfg.load = get_num(kv, "short_load", 0.8);
    cfg.flow_packets = static_cast<std::int64_t>(get_num(kv, "flow_len", 62));
    cfg.warmup = sim::SimTime::from_seconds(warmup);
    cfg.measure = sim::SimTime::from_seconds(duration);
    cfg.seed = seed;
    cfg.checked = paranoia;
    cfg.scheduler_backend = backend;
    cfg.telemetry = tele_cfg;
    cfg.faults = faults;
    const auto r = run_short_flow_experiment(cfg);
    const auto m = core::burst_moments_for_flow(cfg.flow_packets);
    std::printf("utilization : %.2f%% (offered load %.2f)\n", 100 * r.utilization, cfg.load);
    std::printf("AFCT        : %.1f ms over %llu flows (model ~ %.1f ms)\n",
                1e3 * r.afct_seconds,
                static_cast<unsigned long long>(r.flows_completed),
                1e3 * core::predicted_afct_seconds(cfg.flow_packets, r.mean_rtt_sec,
                                                   rate_bps, 1000, cfg.load, m));
    std::printf("drop prob   : %.4f (M/G/1 bound at this buffer: %.4f)\n",
                r.drop_probability,
                core::queue_tail_probability(cfg.load, m,
                                             static_cast<double>(buffer)));
    if (!faults.empty()) {
      std::printf("faults      : %llu packets lost to injected faults\n",
                  static_cast<unsigned long long>(r.fault_drops));
    }
    emit_telemetry(r.telemetry);
    return 0;
  }

  if (mode == "mixed") {
    experiment::MixedFlowExperimentConfig cfg;
    cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
    cfg.num_long_flows = flows;
    cfg.buffer_packets = buffer;
    cfg.short_flow_load = get_num(kv, "short_load", 0.2);
    cfg.short_flow_packets = static_cast<std::int64_t>(get_num(kv, "flow_len", 62));
    // Flavor only: the mixed experiment owns its queue discipline, so the
    // DCTCP step-marking profile applies in long mode alone.
    if (cca) cfg.tcp.flavor = *cca;
    cfg.warmup = sim::SimTime::from_seconds(warmup);
    cfg.measure = sim::SimTime::from_seconds(duration);
    cfg.seed = seed;
    cfg.checked = paranoia;
    cfg.scheduler_backend = backend;
    cfg.telemetry = tele_cfg;
    cfg.faults = faults;
    const auto r = run_mixed_flow_experiment(cfg);
    std::printf("utilization       : %.2f%%\n", 100 * r.utilization);
    std::printf("short-flow AFCT   : %.1f ms over %llu flows\n", 1e3 * r.afct_seconds,
                static_cast<unsigned long long>(r.short_flows_completed));
    std::printf("long-flow goodput : %.1f Mb/s\n", r.long_flow_throughput_bps / 1e6);
    std::printf("drop probability  : %.4f\n", r.drop_probability);
    std::printf("mean queue        : %.1f pkts\n", r.mean_queue_packets);
    if (!faults.empty()) {
      std::printf("faults            : %llu packets lost to injected faults\n",
                  static_cast<unsigned long long>(r.fault_drops));
    }
    emit_telemetry(r.telemetry);
    return 0;
  }

  if (mode == "trace") {
    const std::string trace_path = get_str(kv, "trace", "");
    if (trace_path.empty()) {
      std::fprintf(stderr, "rbsim: mode=trace requires trace=FILE\n");
      return 2;
    }
    std::vector<traffic::TraceRecord> records;
    try {
      records = traffic::load_trace_file(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rbsim: %s\n", e.what());
      return 2;
    }
    if (records.empty()) {
      std::fprintf(stderr, "rbsim: trace '%s' contains no flows\n", trace_path.c_str());
      return 2;
    }

    sim::Simulation sim{seed, backend};
    experiment::ExperimentTelemetry tele{sim, tele_cfg};
    net::DumbbellConfig topo_cfg;
    topo_cfg.num_leaves = std::max(flows, 1);
    topo_cfg.bottleneck_rate = core::BitsPerSec{rate_bps};
    topo_cfg.buffer_packets = buffer;
    net::Dumbbell topo{sim, topo_cfg};
    traffic::TraceWorkload wl{sim, topo, records, traffic::TraceWorkloadConfig{}};
    tele.add_bottleneck_probes(topo.bottleneck());
    tele.add_probe("flows_active", [&wl] { return static_cast<double>(wl.flows_active()); });
    tele.start(sim.now() + tele_cfg.sample_interval);

    std::unique_ptr<fault::FaultInjector> injector;
    if (!faults.empty()) {
      injector = std::make_unique<fault::FaultInjector>(sim);
      for (const auto& link : topo.links()) injector->attach(*link);
      injector->arm(faults);
    }

    check::InvariantAuditor auditor;
    if (paranoia) {
      auditor.add("bottleneck.queue", topo.bottleneck().queue());
      auditor.add("trace_flows", wl);
      if (injector) auditor.add("fault.injector", *injector);
      sim.enable_auditing(auditor);
    }

    stats::UtilizationMeter meter{sim, topo.bottleneck()};
    meter.begin();
    const double trace_end = records.back().arrival_sec;
    sim.run_until(sim::SimTime::from_seconds(trace_end + duration));
    if (paranoia) {
      auditor.audit_now();
      auditor.require_clean();
    }

    std::printf("trace        : %zu flows from %s (last arrival %.1f s)\n", records.size(),
                trace_path.c_str(), trace_end);
    std::printf("completed    : %llu (active at cutoff: %zu)\n",
                static_cast<unsigned long long>(wl.flows_completed()), wl.flows_active());
    std::printf("AFCT         : %.1f ms\n", 1e3 * wl.completions().afct_seconds());
    std::printf("utilization  : %.2f%% over the replay window\n", 100 * meter.utilization());
    std::printf("drops        : %llu\n",
                static_cast<unsigned long long>(
                    topo.bottleneck().queue().stats().dropped_packets));
    emit_telemetry(tele.finish());
    return 0;
  }

  std::fprintf(stderr, "rbsim: unknown mode '%s' (long|short|mixed|trace)\n", mode.c_str());
  return 2;
}

}  // namespace
