// provision_link — command-line buffer provisioning tool.
//
// The workflow a network operator would use: describe the link, get the
// paper's recommendation with a memory-technology feasibility check.
//
//   $ ./provision_link --rate-gbps 10 --rtt-ms 250 --flows 50000 --load 0.8
//
// All flags optional; defaults model a 2004-era 10 Gb/s backbone linecard.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/recommendation.hpp"
#include "core/sizing_rules.hpp"

namespace {

double arg_double(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    std::printf(
        "usage: provision_link [--rate-gbps G] [--rtt-ms MS] [--flows N]\n"
        "                      [--load RHO] [--packet-bytes B] [--sweep]\n\n"
        "Sizes a router buffer per Appenzeller et al. (SIGCOMM 2004):\n"
        "B = RTT*C/sqrt(n), floored by the short-flow M/G/1 bound.\n"
        "--sweep prints the recommendation across a range of flow counts.\n");
    return 0;
  }

  rbs::core::LinkProfile link;
  link.rate = rbs::core::BitsPerSec::gigabits(arg_double(argc, argv, "--rate-gbps", 10.0));
  link.mean_rtt_sec = arg_double(argc, argv, "--rtt-ms", 250.0) / 1e3;
  link.num_long_flows =
      static_cast<std::int64_t>(arg_double(argc, argv, "--flows", 50'000.0));
  link.load = arg_double(argc, argv, "--load", 0.8);
  link.packet_size = rbs::core::Bytes{
      static_cast<std::int64_t>(arg_double(argc, argv, "--packet-bytes", 1000.0))};

  const auto rec = rbs::core::recommend_buffer(link);
  std::printf("%s\n", rbs::core::to_report(link, rec).c_str());

  if (has_flag(argc, argv, "--sweep")) {
    std::printf("sweep over concurrent long flows (same link):\n");
    std::printf("%10s %14s %14s %12s\n", "flows", "buffer (pkts)", "buffer (Mbit)",
                "vs RTT*C");
    for (const std::int64_t n : {1, 10, 100, 1'000, 10'000, 100'000}) {
      auto p = link;
      p.num_long_flows = n;
      const auto r = rbs::core::recommend_buffer(p);
      std::printf("%10lld %14lld %14.2f %11.2f%%\n", static_cast<long long>(n),
                  static_cast<long long>(r.recommended_pkts), r.recommended_bits / 1e6,
                  100.0 * (1.0 - r.buffer_reduction_vs_rule_of_thumb));
    }
  }
  return 0;
}
