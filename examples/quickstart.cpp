// Quickstart: size the buffer for a link, then check the recommendation by
// simulating the link with that buffer.
//
//   $ ./quickstart
//
// Walks through the library's two halves: the analytic models in rbs::core
// and the packet-level simulator behind rbs::experiment.
#include <cstdio>

#include "core/recommendation.hpp"
#include "core/sizing_rules.hpp"
#include "experiment/long_flow_experiment.hpp"

int main() {
  using namespace rbs;

  // --- 1. Ask the models: how much buffer does this link need? ------------
  core::LinkProfile profile;
  profile.rate = core::BitsPerSec{155e6};  // an OC3 interface
  profile.mean_rtt_sec = 0.080;  // 80 ms average flow RTT
  profile.num_long_flows = 200;  // concurrent long-lived TCP flows
  profile.load = 0.8;

  const auto rec = core::recommend_buffer(profile);
  std::printf("%s\n", core::to_report(profile, rec).c_str());

  // --- 2. Check it in simulation: run 200 long-lived TCP Reno flows -------
  experiment::LongFlowExperimentConfig cfg;
  cfg.num_flows = 200;
  cfg.buffer_packets = rec.recommended_pkts;
  cfg.bottleneck_rate = profile.rate;
  cfg.warmup = sim::SimTime::seconds(10);
  cfg.measure = sim::SimTime::seconds(20);

  std::printf("simulating %d flows with B = %lld packets...\n", cfg.num_flows,
              static_cast<long long>(cfg.buffer_packets));
  const auto result = experiment::run_long_flow_experiment(cfg);
  std::printf("  measured utilization : %6.2f %%\n", 100.0 * result.utilization);
  std::printf("  measured loss rate   : %.4f %%\n", 100.0 * result.loss_rate);
  std::printf("  mean queue occupancy : %.1f packets\n", result.mean_queue_packets);

  // --- 3. Contrast with the rule of thumb ---------------------------------
  std::printf("\nrule of thumb would have used %lld packets (%.0fx more)\n",
              static_cast<long long>(rec.rule_of_thumb_pkts),
              static_cast<double>(rec.rule_of_thumb_pkts) /
                  static_cast<double>(cfg.buffer_packets));
  return 0;
}
