// mixed_traffic_study — evaluate candidate buffer sizes against a custom
// traffic mix before deploying one.
//
// Demonstrates composing the experiment API: long-lived TCP + heavy-tailed
// short flows + a non-reactive UDP share on one bottleneck, swept over a set
// of candidate buffers, reporting everything an operator would weigh:
// utilization, loss, queueing delay, and short-flow completion time.
//
//   $ ./mixed_traffic_study            # defaults: 50 Mb/s, 40 long flows
#include <cmath>
#include <cstdio>

#include "core/sizing_rules.hpp"
#include "experiment/mixed_flow_experiment.hpp"
#include "experiment/reporting.hpp"

int main() {
  using namespace rbs;

  experiment::MixedFlowExperimentConfig cfg;
  cfg.bottleneck_rate = core::BitsPerSec{50e6};
  cfg.num_long_flows = 40;
  cfg.short_flow_load = 0.15;
  cfg.short_sizing = experiment::ShortFlowSizing::kPareto;
  cfg.pareto_alpha = 1.2;
  cfg.pareto_max_packets = 1000;
  cfg.udp_load = 0.05;
  cfg.num_short_leaves = 20;
  cfg.warmup = sim::SimTime::seconds(10);
  cfg.measure = sim::SimTime::seconds(30);

  const double rtt = 0.080;
  const auto bdp = core::rule_of_thumb_packets(rtt, cfg.bottleneck_rate.bps(), 1000);
  const auto sqrt_rule =
      core::sqrt_rule_packets(rtt, cfg.bottleneck_rate.bps(), cfg.num_long_flows, 1000);

  std::printf("mixed traffic study — 50 Mb/s, %d long flows + Pareto short flows (%.0f%%)"
              " + UDP (%.0f%%)\n",
              cfg.num_long_flows, 100 * cfg.short_flow_load, 100 * cfg.udp_load);
  std::printf("candidates: rule of thumb = %lld pkts, sqrt rule = %lld pkts\n\n",
              static_cast<long long>(bdp), static_cast<long long>(sqrt_rule));

  experiment::TablePrinter table{{"buffer (pkts)", "utilization", "loss", "mean queue",
                                  "queue delay", "short-flow AFCT"}};
  for (const auto buffer : {sqrt_rule / 2, sqrt_rule, 2 * sqrt_rule, bdp / 2, bdp}) {
    cfg.buffer_packets = buffer;
    const auto r = run_mixed_flow_experiment(cfg);
    const double queue_delay_ms =
        r.mean_queue_packets * 8000.0 / cfg.bottleneck_rate.bps() * 1e3;
    table.add_row({experiment::format("%lld", static_cast<long long>(buffer)),
                   experiment::format("%.2f%%", 100 * r.utilization),
                   experiment::format("%.3f%%", 100 * r.drop_probability),
                   experiment::format("%.1f pkts", r.mean_queue_packets),
                   experiment::format("%.1f ms", queue_delay_ms),
                   experiment::format("%.1f ms", 1e3 * r.afct_seconds)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading the table: utilization saturates around the sqrt rule; everything\n"
              "beyond it only grows the queue (delay) and slows short flows down.\n");
  return 0;
}
