#!/usr/bin/env python3
"""Rule-by-rule test harness for rbs-analyze over tests/analyzer_fixtures/.

Every fixture file declares the findings it must produce on its first line:

    // rbs-analyze-fixture-expect: R1 R1 R3

(an empty list marks a clean twin). The harness runs the analyzer over the
fixture tree with the fixture dir as the repo root — the tree mirrors a
src/ layout so path-scoped rules (R3 headers, R4's tests/ exemption, R1's
telemetry allowlist) exercise their real predicates — and asserts the
produced rule multiset per file matches the expectation exactly.

Also asserts corpus completeness: every rule id must appear in at least
one failing fixture and one clean twin.

Usage: python3 scripts/run_analyzer_fixtures.py [--backend textual|clang|auto]
Exit 0 on success, 1 on mismatch.
"""
from __future__ import annotations

import argparse
import re
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from rbs_analyze import RULES  # noqa: E402
from rbs_analyze.driver import run  # noqa: E402

EXPECT_RE = re.compile(r"//\s*rbs-analyze-fixture-expect:\s*((?:R\d+\s*)*)$")


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--backend", default="textual",
                    choices=("textual", "clang", "auto"))
    ap.add_argument("--fixtures", type=Path,
                    default=Path(__file__).resolve().parents[1]
                    / "tests" / "analyzer_fixtures")
    args = ap.parse_args()

    fixture_root = args.fixtures.resolve()
    files = sorted(
        p for suffix in (".cpp", ".hpp") for p in fixture_root.rglob(f"*{suffix}")
    )
    if not files:
        print(f"fixture harness: no fixtures under {fixture_root}", file=sys.stderr)
        return 1

    expectations = {}
    for f in files:
        first = f.read_text().splitlines()[0]
        m = EXPECT_RE.match(first.strip())
        if not m:
            print(f"fixture harness: {f} lacks a rbs-analyze-fixture-expect header",
                  file=sys.stderr)
            return 1
        rel = f.relative_to(fixture_root).as_posix()
        expectations[rel] = Counter(m.group(1).split())

    backend_name, findings = run(
        repo=fixture_root, files=files, backend_name=args.backend,
        rules=list(RULES), compdb=None,
    )

    produced: dict = {rel: Counter() for rel in expectations}
    for finding in findings:
        produced.setdefault(finding.file, Counter())[finding.rule] += 1

    failures = []
    for rel in sorted(expectations):
        want, got = expectations[rel], produced.get(rel, Counter())
        if want != got:
            failures.append(
                f"{rel}: expected {sorted(want.elements()) or 'no findings'}, "
                f"got {sorted(got.elements()) or 'no findings'}"
            )

    # Corpus completeness: each rule must have a failing and a clean fixture.
    # A rule with no failing fixture is a rule nothing proves still fires —
    # fail loudly and name the file to add.
    for rule in RULES:
        failing = [r for r, w in expectations.items() if w[rule] > 0]
        # Prefix match on the stem ("r1_clean" is R1's twin, not R10's —
        # a bare substring test would hand every r1*_... file to R1).
        clean = [r for r, w in expectations.items()
                 if not w and Path(r).stem.lower().startswith(rule.lower() + "_")]
        if not failing:
            failures.append(
                f"corpus: no failing fixture exercises {rule} — add e.g. "
                f"tests/analyzer_fixtures/src/{rule.lower()}_violation.cpp with a "
                f"'// rbs-analyze-fixture-expect: {rule}' header"
            )
        if not clean:
            failures.append(
                f"corpus: no clean twin exercises {rule} — add e.g. "
                f"tests/analyzer_fixtures/src/{rule.lower()}_clean.cpp with an "
                f"empty '// rbs-analyze-fixture-expect:' header"
            )

    if failures:
        print(f"fixture harness[{backend_name}]: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"fixture harness[{backend_name}]: {len(expectations)} fixtures OK, "
          f"all {len(RULES)} rules exercised failing and clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
