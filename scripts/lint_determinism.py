#!/usr/bin/env python3
"""Determinism lint for the rbs codebase.

The simulator's core contract is bitwise reproducibility: the same config and
seed produce the same results on any machine, any thread count, any run. This
lint flags the C++ constructs that historically break that contract:

  unordered-container  declaration of std::unordered_map/set in src/ —
                       iteration order depends on libstdc++ internals and the
                       pointer values of heap allocations, so any result-
                       affecting iteration is nondeterministic. Declaring one
                       requires an annotation documenting why it is safe
                       (lookup-only) or which ordered structure drives
                       iteration instead.
  unordered-iteration  range-for over an identifier that any header declared
                       as an unordered container (tracked project-wide).
  wall-clock           std::chrono::system_clock / steady_clock / time(),
                       gettimeofday(), clock() — simulations must use
                       sim::SimTime only. (bench/ is exempt: wall-clock is
                       how benchmarks measure themselves. src/telemetry/ is
                       exempt: the engine profiler times the *simulator*
                       with the host clock; those readings feed no simulated
                       quantity.)
  std-rand             std::rand/srand/random_device/mt19937 and the std::*
                       distributions — all randomness must flow through
                       sim::Rng (explicitly seeded xoshiro256**; std::
                       distributions are implementation-defined and differ
                       across standard libraries).
  unseeded-rng         constructing sim::Rng with no arguments.
  raw-time             picosecond literals (3+ thousands-groups, e.g.
                       1'000'000'000) outside src/sim/time.hpp — raw tick
                       arithmetic bypasses the SimTime type and its overflow
                       discipline. Use sim::SimTime::seconds(...) etc.

Any finding can be waived on the offending line (or the line above) with:

    // rbs-lint: allow(<rule>) -- <justification>

The justification is mandatory: an allow() without ' -- reason' is itself an
error. Exit status: 0 clean, 1 findings, 2 usage error.

Usage: lint_determinism.py <dir-or-file> [...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(r"//\s*rbs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)(\s*--\s*\S.*)?")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
# `for (... : ident)` / `for (... : ident_)` — range-for over a bare member or
# local. Chained expressions (foo.bar()) are not matched; those are flagged by
# the declaration rule at the container's home anyway.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)")
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\b(?:::)?(?:time|gettimeofday|clock_gettime)\s*\("
    r"|\bstd::time\s*\("
)
STD_RAND_RE = re.compile(
    r"\bstd::(?:rand|srand|random_device|mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|uniform_(?:int|real)_distribution|normal_distribution|exponential_distribution"
    r"|bernoulli_distribution|poisson_distribution)\b"
    r"|\b(?:::)?s?rand\s*\(\s*\)"
)
# Only explicit empty-init construction: sim::Rng has no default constructor,
# so a bare `Rng member_;` declaration must be seeded in an init list to
# compile at all and is not flagged.
UNSEEDED_RNG_RE = re.compile(
    r"\b(?:sim::)?Rng\s+[A-Za-z_][A-Za-z0-9_]*\s*\{\s*\}|\b(?:sim::)?Rng\s*[({]\s*[)}]"
)
# Three or more thousands-groups: 1'000'000'000 and longer. Two groups
# (1'000'000) are common flow-id offsets and packet counts, not times.
RAW_TIME_RE = re.compile(r"\b\d{1,3}(?:'\d{3}){3,}\b")

ALL_RULES = {
    "unordered-container",
    "unordered-iteration",
    "wall-clock",
    "std-rand",
    "unseeded-rng",
    "raw-time",
}


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents (keeps quotes)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "'" and out and (out[-1].isalnum() or out[-1] == "_"):
            # C++14 digit separator (1'000'000) or a suffix position where a
            # char literal cannot start; keep it.
            out.append(c)
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(lines: list[str], idx: int) -> tuple[set[str], list[str]]:
    """Rules waived for line `idx` (self or preceding line); also validates."""
    rules: set[str] = set()
    errors: list[str] = []
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if not m:
            continue
        names = {r.strip() for r in m.group(1).split(",")}
        unknown = names - ALL_RULES
        if unknown:
            errors.append(f"unknown lint rule(s) in allow(): {', '.join(sorted(unknown))}")
        if not m.group(2):
            errors.append("allow() without a ' -- justification'")
        rules |= names & ALL_RULES
    return rules, errors


def collect_unordered_names(paths: list[Path]) -> dict[str, set[str]]:
    """Identifiers declared as unordered containers, keyed by file stem.

    Scoping by stem pairs a .cpp with its .hpp (members are declared in the
    header, iterated in the source) without letting an unrelated file's
    `active_` poison every other `active_` in the tree.
    """
    by_stem: dict[str, set[str]] = {}
    decl = re.compile(
        r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+([A-Za-z_][A-Za-z0-9_]*)\s*[;{=]"
    )
    for path in paths:
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        for m in decl.finditer(text):
            by_stem.setdefault(path.stem, set()).add(m.group(1))
    return by_stem


def lint_file(path: Path, unordered_names: set[str]) -> list[str]:
    findings: list[str] = []
    try:
        lines = path.read_text(errors="replace").split("\n")
    except OSError as e:
        return [f"{path}:0: cannot read file: {e}"]

    # bench/ measures itself with wall clocks; src/telemetry/ hosts the engine
    # profiler, whose host-clock readings measure the simulator, never the
    # simulation (they feed no simulated quantity).
    wall_clock_exempt = "bench" in path.parts or "telemetry" in path.parts
    is_time_home = path.name == "time.hpp" and "sim" in path.parts
    in_block_comment = False

    for idx, raw in enumerate(lines):
        lineno = idx + 1
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end == -1:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start != -1 and line.find("*/", start) == -1:
            in_block_comment = True
            line = line[:start]
        code = strip_comments_and_strings(line)
        if not code.strip():
            continue
        allowed, allow_errors = allowed_rules(lines, idx)
        for err in allow_errors:
            findings.append(f"{path}:{lineno}: {err}")

        def report(rule: str, message: str) -> None:
            if rule not in allowed:
                findings.append(f"{path}:{lineno}: [{rule}] {message}")

        if UNORDERED_DECL_RE.search(code):
            report(
                "unordered-container",
                "unordered container declared; iteration order is nondeterministic — "
                "annotate with rbs-lint: allow(unordered-container) -- <proof it is "
                "lookup-only or iterated via an ordered companion>",
            )
        for m in RANGE_FOR_RE.finditer(code):
            if m.group(1) in unordered_names:
                report(
                    "unordered-iteration",
                    f"range-for over unordered container '{m.group(1)}'; order depends on "
                    "hash layout — iterate an ordered companion or sort first",
                )
        if not wall_clock_exempt and WALL_CLOCK_RE.search(code):
            report("wall-clock", "wall-clock time in simulation code; use sim::SimTime")
        if STD_RAND_RE.search(code):
            report(
                "std-rand",
                "std random facility; use sim::Rng (explicit seed, portable streams)",
            )
        if UNSEEDED_RNG_RE.search(code):
            report("unseeded-rng", "Rng constructed without an explicit seed")
        if not is_time_home and RAW_TIME_RE.search(code):
            report(
                "raw-time",
                "raw picosecond-scale literal; use sim::SimTime factories "
                "(seconds/milliseconds/...) instead of tick arithmetic",
            )
    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files: list[Path] = []
    for arg in argv[1:]:
        root = Path(arg)
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES and p.is_file()
            )
        elif root.is_file():
            files.append(root)
        else:
            print(f"lint_determinism: no such file or directory: {arg}", file=sys.stderr)
            return 2
    by_stem = collect_unordered_names(files)
    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path, by_stem.get(path.stem, set())))
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
