#!/usr/bin/env python3
"""Validate rbsim telemetry artifacts.

Checks a Chrome trace_event JSON document (``--trace``) and/or a metrics
document (``--metrics``, the ``{"snapshot":…,"series":…}`` file rbsim's
``--metrics`` flag writes) for schema conformance, so CI catches a broken
exporter before a human loads the file into Perfetto and stares at an empty
timeline.

Usage:
    python3 scripts/check_telemetry.py --trace trace.json --metrics out.json

Exits 0 when every supplied artifact is valid, 1 otherwise.
"""
from __future__ import annotations

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C"}


def fail(msg: str) -> None:
    raise SystemExit(f"check_telemetry: FAIL: {msg}")


def check_trace(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty — the run recorded nothing")

    phases_seen = set()
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{where}: missing '{key}': {e}")
        ph = e["ph"]
        if ph not in VALID_PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        phases_seen.add(ph)
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(f"{where}: bad ts {e['ts']!r}")
        if ph == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                fail(f"{where}: complete event needs a non-negative dur: {e}")
        if ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{where}: counter event needs numeric args.value: {e}")
        if ph == "i" and e.get("s") != "g":
            fail(f"{where}: instant events are emitted with global scope: {e}")

    dropped = doc.get("otherData", {}).get("droppedEvents")
    print(
        f"check_telemetry: {path}: OK — {len(events)} events, "
        f"phases {sorted(phases_seen)}, dropped={dropped}"
    )
    return len(events)


def check_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    snapshot = doc.get("snapshot")
    if not isinstance(snapshot, dict) or not isinstance(snapshot.get("metrics"), list):
        fail(f"{path}: missing snapshot.metrics")
    keys = []
    for i, m in enumerate(snapshot["metrics"]):
        where = f"{path}: snapshot.metrics[{i}]"
        if not m.get("name"):
            fail(f"{where}: metric without a name: {m}")
        if m.get("kind") not in ("counter", "gauge", "histogram"):
            fail(f"{where}: unknown kind {m.get('kind')!r}")
        # The registry keys metrics by "name|k=v;k=v", so that composite
        # string is the order a deterministic snapshot must come out in.
        labels = m.get("labels", {})
        keys.append(m["name"] + "|" + ";".join(f"{k}={v}" for k, v in labels.items()))
    if keys != sorted(keys):
        fail(f"{path}: snapshot not in deterministic registry-key order")

    series = doc.get("series")
    if not isinstance(series, dict):
        fail(f"{path}: missing series")
    columns = series.get("columns")
    rows = series.get("rows")
    if not isinstance(columns, list) or not isinstance(rows, list):
        fail(f"{path}: series needs columns and rows")
    for i, row in enumerate(rows):
        if len(row) != len(columns):
            fail(f"{path}: series.rows[{i}] has {len(row)} cells, expected {len(columns)}")
        if not all(isinstance(v, (int, float)) for v in row):
            fail(f"{path}: series.rows[{i}] has non-numeric cells: {row}")
    if rows:
        times = [r[0] for r in rows] if columns and columns[0] == "time_sec" else []
        if times and times != sorted(times):
            fail(f"{path}: series time column is not monotonically increasing")
    if "utilization" in columns:
        idx = columns.index("utilization")
        for i, row in enumerate(rows):
            if not -1e-9 <= row[idx] <= 1.5:
                fail(f"{path}: series.rows[{i}] utilization {row[idx]} out of range")

    print(
        f"check_telemetry: {path}: OK — {len(snapshot['metrics'])} metrics, "
        f"{len(rows)} series rows x {len(columns)} columns"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="rbsim --metrics JSON to validate")
    parser.add_argument(
        "--min-trace-events",
        type=int,
        default=1,
        help="fail if the trace holds fewer events than this",
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")
    if args.trace:
        n = check_trace(args.trace)
        if n < args.min_trace_events:
            fail(f"{args.trace}: only {n} events (< {args.min_trace_events})")
    if args.metrics:
        check_metrics(args.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
