#!/usr/bin/env python3
"""Validate rbsim telemetry artifacts.

Checks a Chrome trace_event JSON document (``--trace``), a metrics document
(``--metrics``, the ``{"snapshot":…,"series":…}`` file rbsim's ``--metrics``
flag writes — including the ``flow_stats`` rollup when ``--flow-stats``
collected one), and/or a flight-recorder post-mortem (``--post-mortem``)
for schema conformance, so CI catches a broken exporter before a human
loads the file into Perfetto and stares at an empty timeline.

Usage:
    python3 scripts/check_telemetry.py --trace trace.json --metrics out.json
    python3 scripts/check_telemetry.py --post-mortem post_mortem.json

Exits 0 when every supplied artifact is valid, 1 otherwise.
"""
from __future__ import annotations

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C"}


def fail(msg: str) -> None:
    raise SystemExit(f"check_telemetry: FAIL: {msg}")


def check_trace(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty — the run recorded nothing")

    phases_seen = set()
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{where}: missing '{key}': {e}")
        ph = e["ph"]
        if ph not in VALID_PHASES:
            fail(f"{where}: unknown phase {ph!r}")
        phases_seen.add(ph)
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(f"{where}: bad ts {e['ts']!r}")
        if ph == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                fail(f"{where}: complete event needs a non-negative dur: {e}")
        if ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{where}: counter event needs numeric args.value: {e}")
        if ph == "i" and e.get("s") != "g":
            fail(f"{where}: instant events are emitted with global scope: {e}")

    dropped = doc.get("otherData", {}).get("droppedEvents")
    print(
        f"check_telemetry: {path}: OK — {len(events)} events, "
        f"phases {sorted(phases_seen)}, dropped={dropped}"
    )
    return len(events)


def check_metrics(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    snapshot = doc.get("snapshot")
    if not isinstance(snapshot, dict) or not isinstance(snapshot.get("metrics"), list):
        fail(f"{path}: missing snapshot.metrics")
    keys = []
    for i, m in enumerate(snapshot["metrics"]):
        where = f"{path}: snapshot.metrics[{i}]"
        if not m.get("name"):
            fail(f"{where}: metric without a name: {m}")
        if m.get("kind") not in ("counter", "gauge", "histogram"):
            fail(f"{where}: unknown kind {m.get('kind')!r}")
        # The registry keys metrics by "name|k=v;k=v", so that composite
        # string is the order a deterministic snapshot must come out in.
        labels = m.get("labels", {})
        keys.append(m["name"] + "|" + ";".join(f"{k}={v}" for k, v in labels.items()))
    if keys != sorted(keys):
        fail(f"{path}: snapshot not in deterministic registry-key order")

    series = doc.get("series")
    if not isinstance(series, dict):
        fail(f"{path}: missing series")
    columns = series.get("columns")
    rows = series.get("rows")
    if not isinstance(columns, list) or not isinstance(rows, list):
        fail(f"{path}: series needs columns and rows")
    for i, row in enumerate(rows):
        if len(row) != len(columns):
            fail(f"{path}: series.rows[{i}] has {len(row)} cells, expected {len(columns)}")
        if not all(isinstance(v, (int, float)) for v in row):
            fail(f"{path}: series.rows[{i}] has non-numeric cells: {row}")
    if rows:
        times = [r[0] for r in rows] if columns and columns[0] == "time_sec" else []
        if times and times != sorted(times):
            fail(f"{path}: series time column is not monotonically increasing")
    if "utilization" in columns:
        idx = columns.index("utilization")
        for i, row in enumerate(rows):
            if not -1e-9 <= row[idx] <= 1.5:
                fail(f"{path}: series.rows[{i}] utilization {row[idx]} out of range")

    fs = doc.get("flow_stats")
    if fs is not None:
        check_flow_stats(path, fs)

    print(
        f"check_telemetry: {path}: OK — {len(snapshot['metrics'])} metrics, "
        f"{len(rows)} series rows x {len(columns)} columns"
        + (f", flow_stats over {fs['flows']} flows" if fs is not None else "")
    )


def _check_sketch(where: str, sketch: object) -> None:
    if not isinstance(sketch, dict):
        fail(f"{where}: sketch is not an object")
    for key in ("alpha", "count", "zero_count", "min", "max", "p50", "p90",
                "p99", "buckets"):
        if key not in sketch:
            fail(f"{where}: sketch missing '{key}'")
    if not 0 < sketch["alpha"] < 1:
        fail(f"{where}: alpha {sketch['alpha']!r} outside (0,1)")
    buckets = sketch["buckets"]
    if not isinstance(buckets, list):
        fail(f"{where}: buckets is not a list")
    total = sketch["zero_count"]
    indices = []
    for i, b in enumerate(buckets):
        if not (isinstance(b, list) and len(b) == 2):
            fail(f"{where}: buckets[{i}] is not an [index, count] pair: {b}")
        indices.append(b[0])
        total += b[1]
    if indices != sorted(indices):
        fail(f"{where}: bucket indices not ascending")
    if total != sketch["count"]:
        fail(f"{where}: bucket counts sum to {total}, count says {sketch['count']}")
    if sketch["count"] > 0 and not sketch["min"] <= sketch["p50"] <= sketch["max"]:
        fail(f"{where}: p50 {sketch['p50']} outside [min, max]")


def check_flow_stats(where: str, fs: object) -> None:
    if not isinstance(fs, dict):
        fail(f"{where}: flow_stats is not an object")
    for key in ("flows", "flows_completed", "retransmits", "ecn_marks",
                "bytes_acked", "fct", "goodput", "retransmit_counts",
                "peak_cwnd", "hogs"):
        if key not in fs:
            fail(f"{where}: flow_stats missing '{key}'")
    if fs["flows_completed"] > fs["flows"]:
        fail(f"{where}: flows_completed {fs['flows_completed']} > flows {fs['flows']}")
    for name in ("fct", "goodput", "retransmit_counts", "peak_cwnd"):
        _check_sketch(f"{where}: flow_stats.{name}", fs[name])
    # FCT covers completed flows only; the others cover every observation.
    if fs["fct"]["count"] != fs["flows_completed"]:
        fail(f"{where}: fct sketch count {fs['fct']['count']} != "
             f"flows_completed {fs['flows_completed']}")
    # record() drops NaN observations, so per-flow sketches may undercount
    # but can never see more observations than flows.
    if fs["goodput"]["count"] > fs["flows"]:
        fail(f"{where}: goodput sketch count {fs['goodput']['count']} > "
             f"flows {fs['flows']}")
    hogs = fs["hogs"]
    if not isinstance(hogs, dict) or "top" not in hogs or "capacity" not in hogs:
        fail(f"{where}: hogs needs capacity and top")
    top = hogs["top"]
    if len(top) > hogs["capacity"]:
        fail(f"{where}: hogs.top has {len(top)} entries > capacity {hogs['capacity']}")
    weights = []
    for i, e in enumerate(top):
        for key in ("key", "weight", "error"):
            if key not in e:
                fail(f"{where}: hogs.top[{i}] missing '{key}'")
        if e["error"] > e["weight"]:
            fail(f"{where}: hogs.top[{i}] error {e['error']} > weight {e['weight']}")
        weights.append(e["weight"])
    if weights != sorted(weights, reverse=True):
        fail(f"{where}: hogs.top not sorted heaviest-first")


def check_post_mortem(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    pm = doc.get("post_mortem")
    if not isinstance(pm, dict):
        fail(f"{path}: missing top-level post_mortem")
    for key in ("reason", "sim_time_ps", "notes", "state"):
        if key not in pm:
            fail(f"{path}: post_mortem missing '{key}'")
    if not isinstance(pm["reason"], str) or not pm["reason"]:
        fail(f"{path}: post_mortem.reason must be a non-empty string")
    if not isinstance(pm["sim_time_ps"], (int, float)) or pm["sim_time_ps"] < 0:
        fail(f"{path}: bad sim_time_ps {pm['sim_time_ps']!r}")
    if not isinstance(pm["notes"], list) or not all(
            isinstance(n, str) for n in pm["notes"]):
        fail(f"{path}: post_mortem.notes must be a list of strings")
    state = pm["state"]
    if not isinstance(state, dict) or not all(
            isinstance(v, (int, float)) for v in state.values()):
        fail(f"{path}: post_mortem.state must map probe names to numbers")
    if "snapshot" in pm and not isinstance(pm["snapshot"].get("metrics"), list):
        fail(f"{path}: post_mortem.snapshot present but has no metrics list")
    if "trace" in pm:
        tr = pm["trace"]
        for key in ("total_events", "dropped_events", "tail"):
            if key not in tr:
                fail(f"{path}: post_mortem.trace missing '{key}'")
        tail = tr["tail"]
        if not isinstance(tail, list):
            fail(f"{path}: post_mortem.trace.tail is not a list")
        times = []
        for i, e in enumerate(tail):
            for key in ("ph", "ts_ps", "name", "cat"):
                if key not in e:
                    fail(f"{path}: trace.tail[{i}] missing '{key}'")
            times.append(e["ts_ps"])
        if times != sorted(times):
            fail(f"{path}: trace.tail not in chronological order")

    print(
        f"check_telemetry: {path}: OK — post-mortem '{pm['reason']}', "
        f"{len(pm['notes'])} notes, {len(pm['state'])} probes"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--metrics", help="rbsim --metrics JSON to validate")
    parser.add_argument(
        "--post-mortem", help="flight-recorder post-mortem JSON to validate"
    )
    parser.add_argument(
        "--min-trace-events",
        type=int,
        default=1,
        help="fail if the trace holds fewer events than this",
    )
    args = parser.parse_args()
    if not args.trace and not args.metrics and not args.post_mortem:
        parser.error("nothing to check: pass --trace, --metrics, and/or --post-mortem")
    if args.trace:
        n = check_trace(args.trace)
        if n < args.min_trace_events:
            fail(f"{args.trace}: only {n} events (< {args.min_trace_events})")
    if args.metrics:
        check_metrics(args.metrics)
    if args.post_mortem:
        check_post_mortem(args.post_mortem)
    return 0


if __name__ == "__main__":
    sys.exit(main())
