"""File discovery, backend selection, and the top-level analyze() entry."""
from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from . import RULES
from .findings import Finding

DEFAULT_ROOTS = ("src", "examples", "bench")
SOURCE_SUFFIXES = (".cpp", ".cc", ".hpp", ".h")


def discover_files(repo: Path, compdb: Optional[Path]) -> List[Path]:
    """Union of the compilation database's in-repo TUs and every header /
    source under the default roots (headers do not appear in a compdb but
    carry most R3 surface)."""
    files = set()
    if compdb is not None and compdb.exists():
        for entry in json.loads(compdb.read_text()):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = Path(entry["directory"]) / p
            try:
                p = p.resolve()
                rel = p.relative_to(repo.resolve())
            except (ValueError, OSError):
                continue
            # tests/ is out of scope by default: test bodies legitimately
            # capture locals in scheduled lambdas (they run the simulation
            # before the scope exits) and seed Rngs directly. The fixture
            # runner analyzes tests/analyzer_fixtures explicitly via --files.
            if rel.parts and rel.parts[0] == "tests":
                continue
            if p.suffix in SOURCE_SUFFIXES and p.exists():
                files.add(p)
    for root in DEFAULT_ROOTS:
        base = repo / root
        if base.is_dir():
            for suffix in SOURCE_SUFFIXES:
                files.update(p.resolve() for p in base.rglob(f"*{suffix}"))
    # Build trees under the roots (CMakeFiles etc.) are not ours.
    return sorted(p for p in files if "CMakeFiles" not in p.parts)


def pick_backend(requested: str):
    from . import backend_textual

    if requested == "textual":
        return backend_textual
    from . import backend_clang

    if requested == "clang":
        if not backend_clang.available():
            raise RuntimeError(
                "backend 'clang' requested but `import clang.cindex` failed; "
                "install the libclang Python bindings (python3-clang) or use "
                "--backend textual"
            )
        return backend_clang
    # auto: prefer the AST when the bindings exist.
    return backend_clang if backend_clang.available() else backend_textual


def run(
    repo: Path,
    files: Optional[List[Path]],
    backend_name: str,
    rules: Optional[List[str]],
    compdb: Optional[Path],
) -> tuple[str, List[Finding]]:
    backend = pick_backend(backend_name)
    rules = list(rules or RULES)
    if files is None:
        files = discover_files(repo, compdb)
    if backend.NAME == "clang":
        findings = backend.analyze(
            repo, files, rules, compdb_dir=compdb.parent if compdb else None
        )
    else:
        findings = backend.analyze(repo, files, rules)
    return backend.NAME, findings
