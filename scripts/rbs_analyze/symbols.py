"""Cross-TU symbol index for the concurrency rules (R6-R8).

Built once over every analyzed file's token stream, the index records, for
each class/struct, the *concurrency classification* of every data member:

  atomic   std::atomic<...> — safe to touch from any thread
  sync     a synchronization primitive itself (mutex / condition_variable /
           thread / core::AnnotatedMutex); its presence marks the class as
           cross-thread
  guarded  carries RBS_GUARDED_BY(...) — lock discipline machine-checked by
           -Wthread-safety (see src/core/thread_annotations.hpp)
  padded   a per-worker PaddedCounter slot (one cache line per owner; only
           the owning worker writes it)
  const    immutable after construction
  plain    none of the above — exactly the members R6 flags when the class
           is cross-thread

A class is *cross-thread* when it owns at least one `sync` member: a class
that carries a mutex, a condition variable, or worker threads is shared
between threads by construction, so every mutable member needs one of the
sanctioned classifications.

Both backends consume the same index (the clang backend delegates R6-R8 to
the shared token engine — libclang does not surface the GNU thread-safety
attributes the classifications hinge on), so the finding model is identical
by construction.

This is a declaration-shaped heuristic, not a C++ front end: function
bodies are discarded, nested classes are indexed as their own entries, and
inheritance is not followed (a derived class is classified by the members
it declares itself).
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from .lexer import Token, find_matching

# Type-token spellings that mark a member as a synchronization primitive.
# The wrapper spellings (core::AnnotatedMutex, check::mc::Mutex/CondVar) are
# the sanctioned ones; the raw std spellings still classify — a class owning
# a bare std::mutex IS cross-thread — but R12 flags them as unwrappable.
SYNC_TYPE_TOKENS = {
    "mutex",
    "shared_mutex",
    "recursive_mutex",
    "condition_variable",
    "condition_variable_any",
    "thread",
    "jthread",
    "AnnotatedMutex",
    "Mutex",
    "CondVar",
}

# Raw std primitive type tokens: when one of these appears std::-qualified
# in a field's declarator, the field cannot be routed through the model
# checker's instrumentation (check/mc/types.hpp) — R12's predicate.
RAW_STD_SYNC_TOKENS = {
    "atomic",
    "mutex",
    "shared_mutex",
    "recursive_mutex",
    "condition_variable",
    "condition_variable_any",
}

# Statements starting with these can never be data-member declarations.
_NON_MEMBER_HEADS = {
    "struct", "class", "enum", "union", "using", "typedef", "friend",
    "template", "static", "constexpr", "static_assert", "operator",
    "public", "private", "protected", "virtual", "explicit", "inline",
}


@dataclasses.dataclass
class FieldInfo:
    name: str
    classification: str  # atomic | sync | guarded | padded | const | plain
    line: int
    # True when the declarator spells a std::-qualified primitive (raw
    # std::atomic / std::mutex / std::condition_variable ...) instead of the
    # MC-wrappable types (check::mc::Atomic/Mutex/CondVar, AnnotatedMutex).
    raw_sync: bool = False


@dataclasses.dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    fields: List[FieldInfo] = dataclasses.field(default_factory=list)

    @property
    def cross_thread(self) -> bool:
        return any(f.classification == "sync" for f in self.fields)


@dataclasses.dataclass
class SymbolIndex:
    """Every class seen across the analyzed file set, keyed nothing — R6
    iterates per file, so entries keep their defining file."""

    classes: List[ClassInfo] = dataclasses.field(default_factory=list)

    def field_classification(self, name: str) -> Optional[str]:
        """The classification of `name` wherever it is declared as a field.

        If the same name is declared in several classes with different
        classifications, the *least* safe one wins (plain < const < padded
        < guarded < sync < atomic), so a sanctioned homonym elsewhere can
        never hide a hazard.
        """
        order = ["plain", "const", "padded", "guarded", "sync", "atomic"]
        best: Optional[str] = None
        for cls in self.classes:
            for f in cls.fields:
                if f.name == name:
                    if best is None or order.index(f.classification) < order.index(best):
                        best = f.classification
        return best


def build_symbol_index(files: Dict[str, List[Token]]) -> SymbolIndex:
    index = SymbolIndex()
    for rel, tokens in files.items():
        index.classes.extend(_classes_in_file(rel, tokens))
    return index


def _classes_in_file(rel: str, tokens: List[Token]) -> List[ClassInfo]:
    out: List[ClassInfo] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in ("struct", "class"):
            continue
        if i > 0 and tokens[i - 1].text == "enum":
            continue  # enum class
        info = _parse_class(rel, tokens, i)
        if info is not None:
            out.append(info)
    return out


def _parse_class(rel: str, tokens: List[Token], kw: int) -> Optional[ClassInfo]:
    """Parses the class introduced at tokens[kw]; None for forward decls."""
    name = ""
    j = kw + 1
    while j < len(tokens):
        t = tokens[j]
        if t.text in ("{", ":", ";"):
            break
        if t.text in ("(", "["):  # alignas(...), attribute lists
            close = find_matching(tokens, j, t.text, ")" if t.text == "(" else "]")
            if close == -1:
                return None
            j = close + 1
            continue
        if t.kind == "ident" and tokens[j - 1].text != "::":
            # Skip attribute-macro idents that take parens (RBS_CAPABILITY,
            # alignas): an ident directly followed by "(" is not the name.
            if j + 1 < len(tokens) and tokens[j + 1].text == "(":
                j += 1
                continue
            name = t.text
        j += 1
    if j >= len(tokens) or tokens[j].text == ";":
        return None  # forward declaration
    # Skip a base-clause to the class body.
    while j < len(tokens) and tokens[j].text != "{":
        if tokens[j].text == ";":
            return None
        j += 1
    if j >= len(tokens):
        return None
    close = find_matching(tokens, j, "{", "}")
    if close == -1:
        return None
    info = ClassInfo(name=name or "<anonymous>", file=rel, line=tokens[kw].line)
    _parse_members(tokens[j + 1 : close], info)
    return info


def _parse_members(body: List[Token], info: ClassInfo) -> None:
    stmt: List[Token] = []
    i = 0
    while i < len(body):
        t = body[i]
        if t.text in ("public", "private", "protected") and i + 1 < len(body) \
                and body[i + 1].text == ":":
            stmt = []
            i += 2
            continue
        if t.text == "{":
            close = find_matching(body, i, "{", "}")
            if close == -1:
                return
            nxt = close + 1 < len(body) and body[close + 1].text == ";"
            if nxt and not _stmt_is_nested_type(stmt):
                # Brace initializer: `std::atomic<bool> flag{false};` — keep
                # the statement, drop the initializer tokens.
                i = close + 1
                continue
            # Function body or nested class (indexed by its own scan).
            stmt = []
            i = close + 1 + (1 if nxt else 0)
            continue
        if t.text == ";":
            field = _classify_member(stmt)
            if field is not None:
                info.fields.append(field)
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1


def _stmt_is_nested_type(stmt: List[Token]) -> bool:
    return any(t.text in ("struct", "class", "enum", "union") for t in stmt)


def _classify_member(stmt: List[Token]) -> Optional[FieldInfo]:
    if not stmt:
        return None
    head = stmt[0].text
    if head in _NON_MEMBER_HEADS or head == "~":
        return None
    texts = [t.text for t in stmt]
    if "operator" in texts or "using" in texts or "static" in texts:
        return None

    # Cut a trailing `= initializer`; an `=` preceding that position at
    # depth 0 also ends the declarator (defaulted members were filtered by
    # the "static"/head checks above; `= default` never reaches here with a
    # field-shaped declarator anyway).
    decl = stmt
    depth = 0
    for k, t in enumerate(stmt):
        if t.text in ("(", "[", "<", "{"):
            depth += 1
        elif t.text in (")", "]", ">", "}"):
            depth -= 1
        elif t.text == ">>":
            depth -= 2
        elif t.text == "=" and depth <= 0:
            decl = stmt[:k]
            break
    if not decl:
        return None

    # The declared name: the last identifier, skipping trailing array
    # extents and the annotation-macro call `RBS_GUARDED_BY ( m )`.
    k = len(decl) - 1
    while k >= 0:
        t = decl[k]
        if t.text in (")", "]"):
            opener = "(" if t.text == ")" else "["
            depth = 0
            while k >= 0:
                if decl[k].text == t.text:
                    depth += 1
                elif decl[k].text == opener:
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
            continue
        if t.kind == "ident" and t.text not in ("RBS_GUARDED_BY", "RBS_PT_GUARDED_BY",
                                                "mutable", "const"):
            break
        k -= 1
    if k < 0 or decl[k].kind != "ident":
        return None
    name_tok = decl[k]
    # An identifier directly followed by "(" in the declarator is a function
    # (or constructor) declaration, not a field.
    if k + 1 < len(decl) and decl[k + 1].text == "(":
        return None
    # Template-argument idents are never the declared name: `vector<Foo>`
    # with no declarator ident after it is a base-specifier fragment etc.
    if k + 1 < len(decl) and decl[k + 1].text in ("<", "::"):
        return None

    classification = _classification(texts, name_tok.text)
    raw_sync = any(
        t.text in RAW_STD_SYNC_TOKENS
        and k >= 2
        and decl[k - 1].text == "::"
        and decl[k - 2].text == "std"
        for k, t in enumerate(decl)
    )
    return FieldInfo(name=name_tok.text, classification=classification,
                     line=name_tok.line, raw_sync=raw_sync)


def _classification(texts: List[str], name: str) -> str:
    if "RBS_GUARDED_BY" in texts or "RBS_PT_GUARDED_BY" in texts:
        return "guarded"
    # Drop one occurrence of the declared name from the right, so a field
    # named after its own type (`std::mutex mutex;`) keeps the type token.
    type_texts = list(texts)
    for k in range(len(type_texts) - 1, -1, -1):
        if type_texts[k] == name:
            del type_texts[k]
            break
    if "atomic" in type_texts or "Atomic" in type_texts:
        return "atomic"
    if any(t in SYNC_TYPE_TOKENS for t in type_texts):
        return "sync"
    if any("PaddedCounter" in t for t in type_texts):
        return "padded"
    if texts and texts[0] in ("const", "constexpr"):
        return "const"
    if "const" in type_texts and "*" not in type_texts and "&" not in type_texts:
        return "const"
    return "plain"
