"""Finding model and suppression handling shared by every backend."""
from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Set


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    file: str  # repo-relative, forward slashes
    line: int
    rule: str  # "R1".."R12"
    message: str
    hint: str = ""
    # "error" findings gate the baseline/exit code; "info" findings are
    # advisory (printed, JSON-exported, fixture-checked) but never fail a
    # run — R11's needless-seq_cst prong is the first user.
    severity: str = "error"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "severity": self.severity,
        }

    def render(self) -> str:
        tag = self.rule if self.severity == "error" else f"{self.rule}:{self.severity}"
        out = f"{self.file}:{self.line}: [{tag}] {self.message}"
        if self.hint:
            out += f"\n    fix: {self.hint}"
        return out


# `// rbs-analyze: allow(R2) -- reason` suppresses that rule on the same
# line or the line below the comment. The legacy determinism-lint syntax
# `// rbs-lint: allow(unordered-iteration) -- reason` is honored for the
# rules it maps onto so existing justified sites keep working.
_ALLOW_RE = re.compile(
    r"//\s*rbs-analyze:\s*allow\((R\d+(?:\s*,\s*R\d+)*)\)\s*--\s*\S"
)
_LEGACY_ALLOW_RE = re.compile(
    r"//\s*rbs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)(\s*--\s*\S.*)?"
)
_LEGACY_RULE_MAP = {
    "unordered-iteration": "R2",
    "unordered-container": "R2",
    "wall-clock": "R1",
    "std-rand": "R1",
    "raw-time": "R1",
    "unseeded-rng": "R4",
}


def collect_suppressions(text: str) -> Dict[int, Set[str]]:
    """Maps 1-based line numbers to the set of rules suppressed there.

    A comment on line N suppresses findings on line N and line N+1, so the
    annotation can sit on its own line above the flagged statement.
    """
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        rules: Set[str] = set()
        m = _ALLOW_RE.search(line)
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
        m = _LEGACY_ALLOW_RE.search(line)
        if m:
            for name in (r.strip() for r in m.group(1).split(",")):
                mapped = _LEGACY_RULE_MAP.get(name)
                if mapped:
                    rules.add(mapped)
        if rules:
            out.setdefault(i, set()).update(rules)
            out.setdefault(i + 1, set()).update(rules)
    return out


def apply_suppressions(
    findings: List[Finding], suppressions_by_file: Dict[str, Dict[int, Set[str]]]
) -> List[Finding]:
    kept = []
    for f in findings:
        allowed = suppressions_by_file.get(f.file, {}).get(f.line, set())
        if f.rule not in allowed:
            kept.append(f)
    return kept
