"""Self-contained backend: lexer + token-stream rules, no dependencies.

This is the backend that runs everywhere (the container image has no
libclang). It shares the finding model, suppression handling, baseline,
and reporting with the clang backend, so switching backends never changes
the workflow — only the precision of the facts.
"""
from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from .findings import Finding, apply_suppressions, collect_suppressions
from .lexer import tokenize
from .rules import ALL_RULES, build_context

NAME = "textual"


def analyze(repo: Path, files: List[Path], rules: List[str]) -> List[Finding]:
    texts: Dict[str, str] = {}
    tokens = {}
    for f in files:
        rel = f.relative_to(repo).as_posix() if f.is_absolute() else f.as_posix()
        try:
            text = (repo / rel).read_text(errors="replace")
        except OSError:
            continue
        texts[rel] = text
        tokens[rel] = tokenize(text)

    ctx = build_context(tokens, repo)
    findings: List[Finding] = []
    for rel, toks in tokens.items():
        for rule in rules:
            findings.extend(ALL_RULES[rule](rel, toks, ctx))

    suppressions = {rel: collect_suppressions(text) for rel, text in texts.items()}
    return sorted(apply_suppressions(findings, suppressions))
