"""Checked-in baseline with a ratchet: counts may only go down.

The baseline records, per (rule, file), how many findings are accepted
debt. A run FAILS if any (rule, file) count exceeds its baseline (new
debt), and WARNS when counts dropped (run --update-baseline to lock the
improvement in). --update-baseline refuses to raise the total — the
ratchet is one-way.
"""
from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding

BaselineCounts = Dict[str, Dict[str, int]]  # rule -> file -> count


def counts_of(findings: List[Finding]) -> BaselineCounts:
    c: Counter = Counter((f.rule, f.file) for f in findings)
    out: BaselineCounts = {}
    for (rule, file), n in sorted(c.items()):
        out.setdefault(rule, {})[file] = n
    return out


def total(counts: BaselineCounts) -> int:
    return sum(n for files in counts.values() for n in files.values())


def load(path: Path) -> BaselineCounts:
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    return data.get("counts", {})


def save(path: Path, counts: BaselineCounts) -> None:
    payload = {
        "comment": "rbs-analyze accepted-debt baseline. Counts per (rule, file) "
                   "may only decrease; regenerate with --update-baseline after "
                   "fixing findings. See docs/static_analysis.md.",
        "total": total(counts),
        "counts": counts,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def compare(
    current: List[Finding], baseline: BaselineCounts
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, improvements) as human-readable lines."""
    cur = counts_of(current)
    regressions: List[str] = []
    improvements: List[str] = []
    keys = {(r, f) for r, files in cur.items() for f in files} | {
        (r, f) for r, files in baseline.items() for f in files
    }
    for rule, file in sorted(keys):
        now = cur.get(rule, {}).get(file, 0)
        base = baseline.get(rule, {}).get(file, 0)
        if now > base:
            regressions.append(
                f"{file}: {rule} findings went {base} -> {now} (+{now - base})"
            )
        elif now < base:
            improvements.append(
                f"{file}: {rule} findings went {base} -> {now} "
                f"(run --update-baseline to ratchet)"
            )
    return regressions, improvements
