"""A small C++ lexer for the textual backend.

Produces a flat token stream with line numbers, with comments and string
literals stripped (their contents can never trigger a rule), preprocessor
directives skipped, and raw strings handled. This is not a full C++
front end — it is exactly enough structure for the rbs-analyze rules:
identifier/punctuation sequences, balanced-delimiter scanning, and
template-argument slicing.
"""
from __future__ import annotations

import dataclasses
import re
from typing import List

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
NUMBER_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|\d[\d'.]*(?:[eE][+-]?\d+)?)[uUlLfF]*")
# Multi-character operators first so e.g. "::" never lexes as two ":".
PUNCT_RE = re.compile(
    r"->\*|<<=|>>=|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|."
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "string" | "punct"
    text: str
    line: int


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r":
            i += 1
            continue
        # Preprocessor directive: skip to end of (continued) line.
        if c == "#" and at_line_start:
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                i += 1
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                break
            line += text.count("\n", i, end + 2)
            i = end + 2
            continue
        # Raw strings: R"delim( ... )delim".
        if c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, i + m.end())
                if end == -1:
                    break
                line += text.count("\n", i, end)
                tokens.append(Token("string", '""', line))
                i = end + len(closer)
                continue
        # Ordinary string / char literals.
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; bail at line end
                j += 1
            tokens.append(Token("string", quote + quote, line))
            i = j + 1
            continue
        m = IDENT_RE.match(text, i)
        if m:
            tokens.append(Token("ident", m.group(0), line))
            i = m.end()
            continue
        m = NUMBER_RE.match(text, i)
        if m and c.isdigit():
            tokens.append(Token("number", m.group(0), line))
            i = m.end()
            continue
        m = PUNCT_RE.match(text, i)
        tokens.append(Token("punct", m.group(0), line))
        i = m.end()
    return tokens


def match_seq(tokens: List[Token], i: int, *texts: str) -> bool:
    """True if tokens[i:i+len(texts)] spell exactly `texts`."""
    if i + len(texts) > len(tokens):
        return False
    return all(tokens[i + k].text == t for k, t in enumerate(texts))


def find_matching(tokens: List[Token], i: int, open_: str, close: str) -> int:
    """Index of the token closing the delimiter opened at `i`, or -1.

    When scanning angle brackets, parentheses/brackets/braces nested inside
    are skipped wholesale so comparison operators inside them cannot be
    mistaken for template delimiters.
    """
    assert tokens[i].text == open_
    depth = 0
    j = i
    pairs = {"(": ")", "[": "]", "{": "}"}
    while j < len(tokens):
        t = tokens[j].text
        if open_ == "<" and t in pairs:
            inner = find_matching(tokens, j, t, pairs[t])
            if inner == -1:
                return -1
            j = inner + 1
            continue
        if t == open_:
            depth += 1
        elif t == close or (open_ == "<" and close == ">" and t == ">>"):
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j
        elif open_ == "<" and t in (";", "{"):
            return -1  # not a template argument list after all
        j += 1
    return -1
