"""rbs-analyze: simulator-semantics static analysis for the rbs codebase.

An AST-grounded analyzer with simulator-specific rules the regex lint
(scripts/lint_determinism.py) cannot express:

  R1  nondeterminism sources (random_device, rand, wall clocks,
      pointer-keyed ordered containers) outside an allowlist
  R2  iteration over unordered_map/unordered_set whose loop body has
      observable effects
  R3  raw double/int64 parameters or members with unit-suffixed names
      (_ps/_seconds/_bytes/_bps/_pkts) crossing public API boundaries
      instead of the strong types in src/core/units.hpp and sim/time.hpp
  R4  RNG discipline: every Rng forked from a named stream, never
      default- or literal-seeded outside tests/
  R5  event-callback lifetime: no by-reference captures in lambdas handed
      to the pooled scheduler (schedule_at/schedule_after/at/after)
  R6  concurrency classification: no writes through by-ref captures inside
      parallel sweep lambdas, and every mutable field of a cross-thread
      class (one owning mutexes/threads) must be atomic, RBS_GUARDED_BY,
      a per-worker PaddedCounters slot, or const
  R7  pooled-event lifetime: no EventPool slot reference/pointer captured
      into a scheduled callback that outlives the slot's recycle point
  R8  backend purity: simulation-semantics code must not branch on the
      SchedulerBackend kind or read wheel internals outside src/sim/,
      telemetry profile paths, and bench/
  R10 raw std::atomic/std::mutex/std::condition_variable outside the
      sanctioned wrapper layer (src/core/thread_annotations.hpp,
      src/check/mc/) — everywhere else the check::mc wrappers are required
  R11 memory-order audit: a relaxed load guarding a free/reset branch is an
      error (no happens-before edge); an explicit memory_order_seq_cst is
      informational (it restates the default)
  R12 cross-thread classes whose fields spell raw std primitives instead of
      the MC-wrappable types — such classes can never run under the
      interleaving explorer (tests/mc/)

R6–R8 consume a cross-TU symbol index (symbols.py) of per-class member
concurrency classifications, built over every analyzed file.

Two interchangeable backends produce the same findings model:

  * ``clang``   — libclang Python bindings over compile_commands.json,
                  used automatically when ``import clang.cindex`` works.
                  R6–R8 are delegated to the shared token engine even here:
                  libclang does not surface the GNU thread-safety
                  attributes the classifications hinge on, and the
                  delegation guarantees backend-identical findings.
  * ``textual`` — a self-contained C++ lexer; no dependencies beyond the
                  standard library, so the analyzer runs in any container.

Findings are governed by a checked-in baseline (baseline.json) with a
ratchet: per-(rule, file) counts may only go down. See
docs/static_analysis.md for the workflow and suppression syntax.
"""

__version__ = "1.2"

RULES = ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
         "R10", "R11", "R12")

RULE_TITLES = {
    "R1": "nondeterminism source",
    "R2": "unordered iteration with observable effects",
    "R3": "raw unit-suffixed scalar on a public API boundary",
    "R4": "RNG not forked from a named stream",
    "R5": "by-reference capture in a pooled scheduler callback",
    "R6": "shared state written in a parallel region without classification",
    "R7": "pooled event slot captured across a recycle point",
    "R8": "scheduler-backend branch outside profile/stats paths",
    "R9": "metric/trace name not in the documented reference",
    "R10": "raw concurrency primitive outside the sanctioned wrapper layer",
    "R11": "memory-order hazard (relaxed publish/free guard or needless seq_cst)",
    "R12": "cross-thread class not expressible in MC-wrappable types",
}
