"""R1–R12 implemented over the lexer's token stream.

Each rule is a function (path, tokens, ctx) -> [Finding]. `ctx` carries
cross-file facts (the index of declared unordered-container variables, the
cross-TU symbol index of concurrency classifications, and the documented
metric-name reference) so rules can resolve names declared in a header
while analyzing the .cpp.

R9 is the one exception to the token-stream diet: the lexer strips string
literal contents, so the metric-name rule re-reads the file and scans raw
text for registry/trace name literals.
"""
from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .lexer import Token, find_matching, match_seq
from .symbols import SymbolIndex, build_symbol_index

RAW_SCALAR_TYPES = {
    "double",
    "float",
    "int",
    "long",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "size_t",
}
UNIT_SUFFIXES = ("_ps", "_seconds", "_bytes", "_bps", "_pkts")

# Wall-clock reads are sanctioned where the regex lint sanctions them:
# telemetry (profiling/tracing needs real time) and bench harnesses.
WALL_CLOCK_ALLOWED_PREFIXES = ("src/telemetry/", "bench/")
WALL_CLOCK_IDENTS = {
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
}

SCHEDULER_CALLS = {"schedule_at", "schedule_after", "at", "after"}

# Entry points that run the passed lambda concurrently on sweep workers.
PARALLEL_CALLS = {"run_indexed", "map", "parallel_sweep", "set_observer"}

# Member calls that mutate a standard container.
CONTAINER_MUTATORS = {
    "push_back", "emplace_back", "pop_back", "insert", "emplace", "erase",
    "clear", "resize", "assign",
}

# R7 does not police the scheduler's own internals: src/sim owns the pool
# and its firing path legitimately holds slot references.
POOL_LIFETIME_ALLOWED_PREFIXES = ("src/sim/",)

# R8 (backend purity) exemptions: the scheduler itself, profile/stats-only
# telemetry, and bench harnesses that compare engine speeds by design.
BACKEND_PURITY_ALLOWED_PREFIXES = ("src/sim/", "src/telemetry/", "bench/")

# Field classifications (see symbols.py) that sanction a cross-thread write.
_SANCTIONED_WRITE_CLASSES = {"atomic", "guarded", "padded"}

# The concurrency-primitive layer: the annotated-mutex wrappers and the
# model-checker instrumentation/scheduler. R10 sanctions raw std primitives
# here (these files are what everything else must use instead), and R6
# prong (b) / R12 skip it (the scheduler's single-baton synchronization has
# no per-field classification to express).
MC_SANCTIONED_PREFIXES = (
    "src/core/thread_annotations.hpp",
    "src/check/mc/",
)

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


@dataclasses.dataclass
class AnalysisContext:
    """Cross-file facts the rules need."""

    # Variable names declared anywhere as std::unordered_{map,set}<...>.
    unordered_names: Set[str] = dataclasses.field(default_factory=set)
    # Cross-TU class/member concurrency classifications (R6–R8).
    symbols: SymbolIndex = dataclasses.field(default_factory=SymbolIndex)
    # Repo root, for rules that need raw file text (R9). None in unit use.
    repo: Optional[Path] = None
    # Backticked tokens from docs/observability.md — the normative metric
    # and trace-name reference R9 checks against. None when the doc is
    # absent (R9 then stays silent rather than flagging everything).
    metric_reference: Optional[Set[str]] = None


def _load_metric_reference(repo: Optional[Path]) -> Optional[Set[str]]:
    if repo is None:
        return None
    try:
        text = (repo / "docs" / "observability.md").read_text(errors="replace")
    except OSError:
        return None
    return set(re.findall(r"`([^`\n]+)`", text))


def build_context(files: Dict[str, List[Token]],
                  repo: Optional[Path] = None) -> AnalysisContext:
    ctx = AnalysisContext()
    ctx.symbols = build_symbol_index(files)
    ctx.repo = repo
    ctx.metric_reference = _load_metric_reference(repo)
    for tokens in files.values():
        for i, t in enumerate(tokens):
            if t.text in ("unordered_map", "unordered_set"):
                j = i + 1
                if j < len(tokens) and tokens[j].text == "<":
                    close = find_matching(tokens, j, "<", ">")
                    if close != -1 and close + 1 < len(tokens):
                        name_tok = tokens[close + 1]
                        if name_tok.kind == "ident":
                            ctx.unordered_names.add(name_tok.text)
    return ctx


def _prev_text(tokens: List[Token], i: int) -> str:
    return tokens[i - 1].text if i > 0 else ""


def _is_member_or_qualified(tokens: List[Token], i: int) -> bool:
    return _prev_text(tokens, i) in (".", "->", "::")


def _in_tests(path: str) -> bool:
    return path.startswith("tests/")


# --------------------------------------------------------------------------
# R1: nondeterminism sources
# --------------------------------------------------------------------------
def rule_r1(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    wall_clock_ok = path.startswith(WALL_CLOCK_ALLOWED_PREFIXES)
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "random_device":
            findings.append(
                Finding(path, t.line, "R1", "std::random_device is nondeterministic",
                        "seed a sim::Rng from the simulation seed instead")
            )
        elif t.text in ("rand", "srand", "rand_r"):
            if match_seq(tokens, i + 1, "(") and not (
                _prev_text(tokens, i) in (".", "->")
            ):
                findings.append(
                    Finding(path, t.line, "R1", f"C library {t.text}() uses hidden global state",
                            "use sim::Rng forked from a named stream")
                )
        elif t.text in WALL_CLOCK_IDENTS and not wall_clock_ok:
            findings.append(
                Finding(path, t.line, "R1", f"wall-clock read via {t.text}",
                        "simulated code must use sim::SimTime / Simulation::now()")
            )
        elif t.text == "time" and match_seq(tokens, i - 1, "::", "time") and not wall_clock_ok:
            # std::time(...) / ::time(...) — not SimTime (type use, no call),
            # not member calls like sim.time().
            if match_seq(tokens, i + 1, "("):
                findings.append(
                    Finding(path, t.line, "R1", "wall-clock read via time()",
                            "simulated code must use sim::SimTime / Simulation::now()")
                )
        elif t.text in ("map", "set") and match_seq(tokens, i - 1, "::", t.text):
            # std::map/std::set keyed by a pointer type: iteration order is
            # the pointer order — an address-space-layout dependency.
            if match_seq(tokens, i + 1, "<"):
                close = find_matching(tokens, i + 1, "<", ">")
                if close != -1:
                    # First template argument: up to the first comma at depth 0.
                    depth = 0
                    first_arg_end = close
                    for j in range(i + 2, close):
                        tj = tokens[j].text
                        if tj in ("<", "(", "["):
                            depth += 1
                        elif tj in (">", ")", "]", ">>"):
                            depth -= 2 if tj == ">>" else 1
                        elif tj == "," and depth == 0:
                            first_arg_end = j
                            break
                    if first_arg_end > i + 2 and tokens[first_arg_end - 1].text == "*":
                        findings.append(
                            Finding(path, t.line, "R1",
                                    f"std::{t.text} keyed by a pointer type iterates in address order",
                                    "key by a stable id (FlowId, NodeId, name) instead of a pointer")
                        )
    return findings


# --------------------------------------------------------------------------
# R2: unordered iteration with observable effects
# --------------------------------------------------------------------------
def _statement_is_collect_into_local(body: List[Token]) -> str | None:
    """Returns the local collector name if the body is exactly
    `local.push_back(...);` / `local.insert(...);` / `local.emplace_back(...);`."""
    if len(body) < 5:
        return None
    if body[0].kind != "ident" or body[1].text != ".":
        return None
    if body[2].text not in ("push_back", "insert", "emplace_back"):
        return None
    if body[3].text != "(":
        return None
    close = find_matching(body, 3, "(", ")")
    if close == -1 or close + 1 >= len(body):
        return None
    rest = [t.text for t in body[close + 1 :]]
    return body[0].text if rest == [";"] else None


def rule_r2(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.text != "for" or not match_seq(tokens, i + 1, "("):
            continue
        close_paren = find_matching(tokens, i + 1, "(", ")")
        if close_paren == -1:
            continue
        head = tokens[i + 2 : close_paren]
        colon_idx = next(
            (k for k, ht in enumerate(head) if ht.text == ":" ), None
        )
        if colon_idx is None:
            continue  # classic for loop
        range_expr = head[colon_idx + 1 :]
        iterated = [ht.text for ht in range_expr if ht.kind == "ident"]
        if not any(name in ctx.unordered_names for name in iterated):
            continue
        # Loop body: brace block or single statement.
        body_start = close_paren + 1
        if body_start >= len(tokens):
            continue
        if tokens[body_start].text == "{":
            body_end = find_matching(tokens, body_start, "{", "}")
            if body_end == -1:
                continue
            body = tokens[body_start + 1 : body_end]
            after = tokens[body_end + 1 : body_end + 16]
        else:
            j = body_start
            while j < len(tokens) and tokens[j].text != ";":
                j += 1
            body = tokens[body_start : j + 1]
            after = tokens[j + 1 : j + 16]
        collector = _statement_is_collect_into_local(body)
        if collector is not None:
            # Sanctioned pattern: push keys into a local, then sort it.
            sorted_after = any(
                match_seq(after, k, "std", "::", "sort", "(")
                and k + 4 < len(after)
                and after[k + 4].text == collector
                for k in range(len(after))
            )
            if sorted_after:
                continue
        findings.append(
            Finding(path, t.line, "R2",
                    "iteration over an unordered container with observable effects "
                    "(order depends on hash layout)",
                    "collect keys into a vector and std::sort before acting, use an "
                    "ordered container, or justify with "
                    "// rbs-analyze: allow(R2) -- <reason>")
        )
    return findings


# --------------------------------------------------------------------------
# R3: raw unit-suffixed scalars on public API boundaries (headers)
# --------------------------------------------------------------------------
def rule_r3(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.endswith((".hpp", ".h")) or not path.startswith("src/"):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in RAW_SCALAR_TYPES:
            continue
        # Skip the qualifier tokens: std :: int64_t — land on int64_t only.
        if _prev_text(tokens, i) == "::" and not match_seq(tokens, i - 2, "std"):
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].kind == "ident":
            name = tokens[j].text
            stripped = name[:-1] if name.endswith("_") else name
            if not stripped.endswith(UNIT_SUFFIXES):
                continue
            nxt = tokens[j + 1].text if j + 1 < len(tokens) else ""
            # Parameter (`, name)` / `name,`), member (`name;` / `name{...};`),
            # or defaulted (`name = ...`). A following `(` would be a function
            # declarator — out of scope for R3.
            if nxt in (";", ",", ")", "{", "="):
                unit = "sim::SimTime" if stripped.endswith("_ps") or stripped.endswith("_seconds") else (
                    "core::Bytes" if stripped.endswith("_bytes") else (
                        "core::BitsPerSec" if stripped.endswith("_bps") else "core::Packets"))
                findings.append(
                    Finding(path, t.line, "R3",
                            f"raw {t.text} '{name}' carries a unit in its name",
                            f"use the strong type {unit} (src/core/units.hpp) across this API")
                )
    return findings


# --------------------------------------------------------------------------
# R4: RNG discipline
# --------------------------------------------------------------------------
def rule_r4(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if _in_tests(path):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.text != "Rng" or t.kind != "ident":
            continue
        j = i + 1
        # `Rng name ...` or a braced temporary `Rng{...}`.
        name_tok = None
        if j < len(tokens) and tokens[j].kind == "ident":
            name_tok = tokens[j]
            j += 1
        if j >= len(tokens):
            continue
        nxt = tokens[j].text
        if name_tok is not None and nxt == ";":
            # `Rng rng_;` (trailing underscore) is a member declaration whose
            # seeding happens in the constructor init list — the construction
            # site there is what gets checked, not the declaration.
            if name_tok.text.endswith("_"):
                continue
            findings.append(
                Finding(path, t.line, "R4",
                        f"Rng '{name_tok.text}' default-constructed (unseeded)",
                        "fork from a named stream: sim.rng().fork(kMyStream)")
            )
        elif nxt in ("{", "("):
            close = find_matching(tokens, j, nxt, "}" if nxt == "{" else ")")
            if close == -1:
                continue
            args = tokens[j + 1 : close]
            if len(args) == 1 and args[0].kind == "number":
                findings.append(
                    Finding(path, t.line, "R4",
                            "Rng seeded with a bare integer literal",
                            "derive from the run seed via a named stream: "
                            "sim.rng().fork(kMyStream) or Rng{config.seed}")
                )
    return findings


# --------------------------------------------------------------------------
# R5: event-callback lifetime
# --------------------------------------------------------------------------
def _lambda_captures_by_ref(tokens: List[Token], open_bracket: int) -> bool:
    """True if the capture list contains a by-reference capture: `[&]`,
    `[&, ...]`, `[&x]`, or the init form `[&x = expr]`. An `&` that is not
    at the start of a capture (e.g. `[p = &obj]`) is address-of, not a
    by-reference capture."""
    close = find_matching(tokens, open_bracket, "[", "]")
    if close == -1:
        return False
    caps = tokens[open_bracket + 1 : close]
    for k, tok in enumerate(caps):
        if tok.text == "&" and (k == 0 or caps[k - 1].text == ","):
            return True
    return False


def rule_r5(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in SCHEDULER_CALLS:
            continue
        if not _is_member_or_qualified(tokens, i):
            continue  # only method calls: sim.after(...), scheduler_->at(...)
        if not match_seq(tokens, i + 1, "("):
            continue
        close = find_matching(tokens, i + 1, "(", ")")
        if close == -1:
            continue
        j = i + 2
        while j < close:
            if tokens[j].text == "[" and tokens[j - 1].text in ("(", ","):
                if _lambda_captures_by_ref(tokens, j):
                    findings.append(
                        Finding(path, tokens[j].line, "R5",
                                f"by-reference capture in a lambda passed to {t.text}() — "
                                "the pooled event may outlive the captured frame",
                                "capture by value (or capture `this` and use members); "
                                "events fire after the enclosing scope returns")
                    )
                lam_close = find_matching(tokens, j, "[", "]")
                j = lam_close + 1 if lam_close != -1 else j + 1
                continue
            j += 1
    return findings


# --------------------------------------------------------------------------
# R6: shared state written inside a parallel region
# --------------------------------------------------------------------------
def _explicit_ref_captures(tokens: List[Token], open_bracket: int) -> Set[str]:
    """Names explicitly captured by reference in a lambda's capture list:
    `[&x]`, `[&x, ...]`, and the init form `[&x = expr]` all yield x. A
    blanket `[&]` yields nothing — bare identifiers in the body cannot be
    told apart from lambda locals, so the blanket form is out of scope
    (documented imprecision; the thread-safety analysis covers fields)."""
    close = find_matching(tokens, open_bracket, "[", "]")
    if close == -1:
        return set()
    caps = tokens[open_bracket + 1 : close]
    names: Set[str] = set()
    for k, tok in enumerate(caps):
        if tok.text == "&" and (k == 0 or caps[k - 1].text == ","):
            if k + 1 < len(caps) and caps[k + 1].kind == "ident":
                names.add(caps[k + 1].text)
    return names


def _lambda_body_range(tokens: List[Token], open_bracket: int) -> Tuple[int, int]:
    """(body_start, body_end) token indices of the lambda's compound body
    (exclusive of the braces), or (-1, -1) if this is not a lambda."""
    close = find_matching(tokens, open_bracket, "[", "]")
    if close == -1:
        return -1, -1
    j = close + 1
    if j < len(tokens) and tokens[j].text == "(":
        params_close = find_matching(tokens, j, "(", ")")
        if params_close == -1:
            return -1, -1
        j = params_close + 1
    # Skip mutable/noexcept/-> trailing-return up to the body.
    while j < len(tokens) and tokens[j].text != "{":
        if tokens[j].text in (";", ")", ",", "]", "}"):
            return -1, -1
        j += 1
    if j >= len(tokens):
        return -1, -1
    body_close = find_matching(tokens, j, "{", "}")
    if body_close == -1:
        return -1, -1
    return j + 1, body_close


def _skip_group_backwards(body: List[Token], k: int, close: str, open_: str) -> int:
    depth = 0
    while k >= 0:
        if body[k].text == close:
            depth += 1
        elif body[k].text == open_:
            depth -= 1
            if depth == 0:
                break
        k -= 1
    return k - 1


def _lvalue_base(body: List[Token], p: int) -> Tuple[Optional[int], bool]:
    """Walks the lvalue chain ending at body[p] back to its base identifier.
    Returns (index of the base ident, saw_subscript)."""
    subscripted = False
    k = p
    while k >= 0:
        t = body[k].text
        if t == "]":
            k = _skip_group_backwards(body, k, "]", "[")
            subscripted = True
            continue
        if t == ")":
            k = _skip_group_backwards(body, k, ")", "(")
            continue
        if body[k].kind == "ident":
            if k >= 1 and body[k - 1].text in (".", "->", "::"):
                k -= 2
                continue
            return k, subscripted
        if t == "*":
            k -= 1
            continue
        return None, subscripted
    return None, subscripted


def _shared_write_targets(body: List[Token]) -> List[Tuple[Token, bool]]:
    """(base identifier token, subscripted) for every write in `body`:
    assignments, compound assignments, increments/decrements, and container
    mutator calls."""
    out: List[Tuple[Token, bool]] = []
    for idx, tok in enumerate(body):
        if tok.text in _ASSIGN_OPS and idx > 0:
            base, subscripted = _lvalue_base(body, idx - 1)
            if base is None:
                continue
            if tok.text == "=":
                # Declarations (`int x = 5;`, `auto& r = ...;`) and init
                # captures / designated initializers are not shared writes.
                before = body[base - 1].text if base > 0 else ""
                before_kind = body[base - 1].kind if base > 0 else ""
                if before_kind == "ident" or before in ("&", "*", ">", ">>", "[", ",", "."):
                    continue
            out.append((body[base], subscripted))
        elif tok.text in ("++", "--"):
            p = None
            if idx > 0 and (body[idx - 1].kind == "ident" or body[idx - 1].text in ("]", ")")):
                p = idx - 1  # postfix
            elif idx + 1 < len(body) and body[idx + 1].kind == "ident":
                # Prefix: the chain extends to the right; find its end.
                q = idx + 1
                while q + 2 < len(body) and body[q + 1].text in (".", "->", "::") \
                        and body[q + 2].kind == "ident":
                    q += 2
                if q + 1 < len(body) and body[q + 1].text == "[":
                    sub_close = find_matching(body, q + 1, "[", "]")
                    if sub_close != -1:
                        q = sub_close
                p = q
            if p is not None:
                base, subscripted = _lvalue_base(body, p)
                if base is not None:
                    out.append((body[base], subscripted))
        elif tok.kind == "ident" and tok.text in CONTAINER_MUTATORS and idx >= 2 \
                and body[idx - 1].text in (".", "->") \
                and idx + 1 < len(body) and body[idx + 1].text == "(":
            base, subscripted = _lvalue_base(body, idx - 2)
            if base is not None:
                out.append((body[base], subscripted))
    return out


def _parallel_call_lambdas(tokens: List[Token]):
    """Yields (call_name, capture_open_index) for every lambda argument of a
    parallel-dispatch call (run_indexed / map / parallel_sweep /
    set_observer)."""
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in PARALLEL_CALLS:
            continue
        if not _is_member_or_qualified(tokens, i):
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].text == "<":  # map<R>(...)
            tmpl_close = find_matching(tokens, j, "<", ">")
            if tmpl_close != -1:
                j = tmpl_close + 1
        if not match_seq(tokens, j, "("):
            continue
        close = find_matching(tokens, j, "(", ")")
        if close == -1:
            continue
        k = j + 1
        while k < close:
            if tokens[k].text == "[" and tokens[k - 1].text in ("(", ",", "{"):
                yield t.text, k
                # Skip the whole lambda (capture list, params, body): lambdas
                # nested inside it are scheduler callbacks, not sweep points,
                # and must only be judged against the outer capture list.
                _, body_end = _lambda_body_range(tokens, k)
                if body_end != -1:
                    k = body_end + 1
                else:
                    lam_close = find_matching(tokens, k, "[", "]")
                    k = lam_close + 1 if lam_close != -1 else k + 1
                continue
            k += 1


def rule_r6(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if _in_tests(path):
        return []
    findings: List[Finding] = []

    # Prong (a): writes through explicitly by-ref-captured names inside a
    # lambda handed to the parallel sweep engine. Index-addressed targets
    # (`out[i] = ...`) are the sanctioned disjoint-slot contract.
    for call_name, cap_open in _parallel_call_lambdas(tokens):
        ref_caps = _explicit_ref_captures(tokens, cap_open)
        if not ref_caps:
            continue
        body_start, body_end = _lambda_body_range(tokens, cap_open)
        if body_start == -1:
            continue
        body = tokens[body_start:body_end]
        seen: Set[Tuple[str, int]] = set()
        for base_tok, subscripted in _shared_write_targets(body):
            if subscripted or base_tok.text not in ref_caps:
                continue
            cls = ctx.symbols.field_classification(base_tok.text)
            if cls in _SANCTIONED_WRITE_CLASSES:
                continue
            key = (base_tok.text, base_tok.line)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(path, base_tok.line, "R6",
                        f"'{base_tok.text}' is captured by reference and written "
                        f"inside a {call_name}() lambda — sweep workers race on it",
                        "give each point its own slot (write through the point index "
                        "into a preallocated array), use std::atomic, or guard it "
                        "with RBS_GUARDED_BY + core::LockGuard")
            )

    # Prong (b): a class that owns threads/mutexes/condition variables is
    # cross-thread by construction; every mutable member must carry a
    # concurrency classification (atomic / RBS_GUARDED_BY / PaddedCounter /
    # const). Unclassified members are exactly the state -Wthread-safety
    # cannot see. The concurrency-primitive layer itself (annotation
    # wrappers, the model-checker scheduler) is sanctioned: it is the
    # instrument these classifications are expressed in, and its own
    # synchronization (a single controller/vthread baton documented in
    # check/mc/scheduler.hpp) has no per-field spelling.
    if path.startswith("src/") and not path.startswith(MC_SANCTIONED_PREFIXES):
        for cls_info in ctx.symbols.classes:
            if cls_info.file != path or not cls_info.cross_thread:
                continue
            for field in cls_info.fields:
                if field.classification != "plain":
                    continue
                findings.append(
                    Finding(path, field.line, "R6",
                            f"field '{field.name}' of cross-thread class "
                            f"'{cls_info.name}' has no concurrency classification",
                            "classify it: std::atomic, RBS_GUARDED_BY(mutex), a "
                            "per-worker PaddedCounters slot, or const — the "
                            "thread-safety analysis cannot check what is not "
                            "annotated")
                )
    return findings


# --------------------------------------------------------------------------
# R7: pooled-event lifetime across a recycle point
# --------------------------------------------------------------------------
def _slot_bound_names(tokens: List[Token]) -> Set[str]:
    """Local names bound to EventPool slots: `EventPool::Slot& s = ...`,
    `EventPool::Slot* p = ...`, and `auto& s = pool_[...]`."""
    names: Set[str] = set()
    for i, t in enumerate(tokens):
        if t.text == "Slot" and match_seq(tokens, i - 2, "EventPool", "::"):
            j = i + 1
            while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "ident":
                names.add(tokens[j].text)
        elif t.text == "auto" and match_seq(tokens, i + 1, "&") \
                and i + 2 < len(tokens) and tokens[i + 2].kind == "ident" \
                and match_seq(tokens, i + 3, "="):
            k = i + 4
            while k < len(tokens) and tokens[k].text != ";":
                if tokens[k].kind == "ident" and "pool" in tokens[k].text.lower() \
                        and match_seq(tokens, k + 1, "["):
                    names.add(tokens[i + 2].text)
                    break
                k += 1
    return names


def rule_r7(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if _in_tests(path) or path.startswith(POOL_LIFETIME_ALLOWED_PREFIXES):
        return []
    slot_names = _slot_bound_names(tokens)
    if not slot_names:
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in SCHEDULER_CALLS:
            continue
        if not _is_member_or_qualified(tokens, i):
            continue
        if not match_seq(tokens, i + 1, "("):
            continue
        close = find_matching(tokens, i + 1, "(", ")")
        if close == -1:
            continue
        j = i + 2
        while j < close:
            if tokens[j].text == "[" and tokens[j - 1].text in ("(", ","):
                cap_close = find_matching(tokens, j, "[", "]")
                if cap_close != -1:
                    captured = {tok.text for tok in tokens[j + 1 : cap_close]
                                if tok.kind == "ident"}
                    for name in sorted(captured & slot_names):
                        findings.append(
                            Finding(path, tokens[j].line, "R7",
                                    f"pooled event slot '{name}' captured into a "
                                    f"{t.text}() callback — the slot can be recycled "
                                    "(and its 128-byte big-slot storage reused) "
                                    "before the event fires",
                                    "copy the data you need into the callback, or "
                                    "keep an EventHandle and re-resolve it when the "
                                    "event fires; slot references die at the next "
                                    "pool recycle")
                        )
                j = cap_close + 1 if cap_close != -1 else j + 1
                continue
            j += 1
    return findings


# --------------------------------------------------------------------------
# R8: scheduler-backend purity outside profile/stats paths
# --------------------------------------------------------------------------
def rule_r8(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if _in_tests(path) or path.startswith(BACKEND_PURITY_ALLOWED_PREFIXES):
        return []
    findings: List[Finding] = []
    seen_lines: Set[int] = set()

    def emit(line: int, what: str) -> None:
        if line in seen_lines:
            return
        seen_lines.add(line)
        findings.append(
            Finding(path, line, "R8",
                    f"simulation-semantics code branches on the scheduler backend "
                    f"({what}) — both backends fire bitwise-identically, so any "
                    "behavioral difference here is a determinism bug",
                    "keep backend probes inside src/sim/, src/telemetry/ profile "
                    "paths, or bench/; if this read is stats-only, justify with "
                    "// rbs-analyze: allow(R8) -- <reason>")
        )

    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text in ("kHeap", "kWheel", "kAuto") \
                and match_seq(tokens, i - 2, "SchedulerBackend", "::"):
            before = tokens[i - 3].text if i >= 3 else ""
            after = tokens[i + 1].text if i + 1 < len(tokens) else ""
            if before in ("==", "!=", "case") or after in ("==", "!="):
                emit(t.line, f"comparison against SchedulerBackend::{t.text}")
        elif t.text == "backend" and _is_member_or_qualified(tokens, i) \
                and match_seq(tokens, i + 1, "(", ")"):
            after = tokens[i + 3].text if i + 3 < len(tokens) else ""
            # Walk left over the object chain (`x == sim.scheduler().backend()`).
            k = i - 1
            while k >= 0:
                tk = tokens[k].text
                if tk in (".", "->", "::") or tokens[k].kind == "ident":
                    k -= 1
                    continue
                if tk == ")":
                    depth = 0
                    while k >= 0:
                        if tokens[k].text == ")":
                            depth += 1
                        elif tokens[k].text == "(":
                            depth -= 1
                            if depth == 0:
                                break
                        k -= 1
                    k -= 1
                    continue
                break
            before = tokens[k].text if k >= 0 else ""
            if after in ("==", "!=") or before in ("==", "!="):
                emit(t.line, "comparison of backend()")
        elif t.text == "wheel_stats" and _is_member_or_qualified(tokens, i) \
                and match_seq(tokens, i + 1, "("):
            emit(t.line, "read of wheel backend internals via wheel_stats()")
    return findings


# --------------------------------------------------------------------------
# R9: undocumented metric / trace names
# --------------------------------------------------------------------------
# The metrics-name reference table in docs/observability.md is normative:
# every metric registered on a MetricsRegistry and every trace category or
# event name emitted as a string literal in src/ must appear there
# (backticked). Names built at runtime (variables, concatenation) are out of
# scope — the rule checks only literal arguments in name positions.

_R9_REGISTRY_CALL_RE = re.compile(r"(?:\.|->)\s*(?:counter|gauge|histogram)\s*\(")
_R9_TRACE_METHOD_RE = re.compile(
    r"(?:\.|->)\s*(?:instant|complete|instant_with_detail)\s*\(")
_R9_TRACE_MACRO_RE = re.compile(r"\bRBS_TRACE_(?:INSTANT|COMPLETE|COUNTER)\s*\(")
_R9_STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _r9_strip_comments(text: str) -> str:
    """Blanks comments while preserving offsets and line structure."""

    def blank(m: "re.Match[str]") -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", blank, text)


def _r9_call_args(text: str, open_paren: int) -> List[Tuple[str, int]]:
    """Splits the argument list of the call whose '(' sits at `open_paren`
    into top-level (arg_text, start_offset) pairs."""
    args: List[Tuple[str, int]] = []
    depth = 1
    start = i = open_paren + 1
    in_string = False
    while i < len(text):
        c = text[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_string = False
        elif c == '"':
            in_string = True
        elif c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append((text[start:i], start))
                return args
        elif c == "," and depth == 1:
            args.append((text[start:i], start))
            start = i + 1
        i += 1
    return args


def rule_r9(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.startswith("src/"):
        return []
    if ctx.repo is None or ctx.metric_reference is None:
        return []
    try:
        raw = (ctx.repo / path).read_text(errors="replace")
    except OSError:
        return []
    text = _r9_strip_comments(raw)
    findings: List[Finding] = []

    def check_args(args: List[Tuple[str, int]]) -> None:
        for arg, start in args:
            m = _R9_STRING_LITERAL_RE.fullmatch(arg.strip())
            if m is None:
                continue  # runtime-built name: out of scope
            name = m.group(1)
            if name in ctx.metric_reference:
                continue
            line = text.count("\n", 0, start) + 1
            findings.append(
                Finding(path, line, "R9",
                        f'metric/trace name "{name}" is not in the '
                        "docs/observability.md reference",
                        "add it to the metrics-name reference table "
                        "(the table is normative) or reuse a documented name")
            )

    for m in _R9_REGISTRY_CALL_RE.finditer(text):
        # Name position: first argument. This also covers
        # TraceSession::counter, whose first argument is the category.
        check_args(_r9_call_args(text, m.end() - 1)[:1])
    for m in _R9_TRACE_METHOD_RE.finditer(text):
        # Category and event name.
        check_args(_r9_call_args(text, m.end() - 1)[:2])
    for m in _R9_TRACE_MACRO_RE.finditer(text):
        # Argument 0 is the session expression; 1 and 2 are cat and name.
        check_args(_r9_call_args(text, m.end() - 1)[1:3])
    return findings


# --------------------------------------------------------------------------
# R10: raw concurrency primitives outside the sanctioned wrapper layer
# --------------------------------------------------------------------------
# Every std::atomic / std::mutex / std::condition_variable (and the
# shared/recursive/any variants) spelled in src/ must live in the
# concurrency-primitive layer (MC_SANCTIONED_PREFIXES). Everywhere else the
# MC-wrappable spellings — check::mc::Atomic / check::mc::Mutex /
# check::mc::CondVar, or core::AnnotatedMutex — are required: they compile
# to the std types when RBS_MODEL_CHECK is off, and a raw primitive is state
# the interleaving explorer can never schedule around.

RAW_PRIMITIVE_TOKENS = {
    "atomic",
    "mutex",
    "shared_mutex",
    "recursive_mutex",
    "condition_variable",
    "condition_variable_any",
}

_RAW_PRIMITIVE_REPLACEMENT = {
    "atomic": "check::mc::Atomic<T> (src/check/mc/types.hpp)",
    "mutex": "check::mc::Mutex or core::AnnotatedMutex",
    "shared_mutex": "check::mc::Mutex or core::AnnotatedMutex",
    "recursive_mutex": "check::mc::Mutex or core::AnnotatedMutex",
    "condition_variable": "check::mc::CondVar",
    "condition_variable_any": "check::mc::CondVar",
}


def rule_r10(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.startswith("src/") or path.startswith(MC_SANCTIONED_PREFIXES):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in RAW_PRIMITIVE_TOKENS:
            continue
        if not (i >= 2 and tokens[i - 1].text == "::" and tokens[i - 2].text == "std"):
            continue
        findings.append(
            Finding(path, t.line, "R10",
                    f"raw std::{t.text} outside the sanctioned wrapper layer "
                    "(src/core/thread_annotations.hpp, src/check/mc/)",
                    f"use {_RAW_PRIMITIVE_REPLACEMENT[t.text]} — identical codegen "
                    "with RBS_MODEL_CHECK off, schedulable by the interleaving "
                    "explorer with it on")
        )
    return findings


# --------------------------------------------------------------------------
# R11: memory-order audit
# --------------------------------------------------------------------------
# Error prong: a memory_order_relaxed load in a branch condition whose body
# frees or resets an object (`delete` / `free(...)` / `.reset(...)`). A
# relaxed load carries no happens-before edge, so the branch can observe the
# flag before the writes it is meant to publish — freeing on its say-so is a
# use-after-free window. Informational prong: an explicit
# memory_order_seq_cst argument restates the default; either drop it or
# weaken to the acquire/release pair the algorithm actually needs.

_R11_FREE_IDENTS = {"delete", "free", "reset"}


def _r11_condition_has_relaxed_load(cond: List[Token]) -> Optional[Token]:
    for k, t in enumerate(cond):
        if t.kind == "ident" and t.text == "load" and match_seq(cond, k + 1, "("):
            close = find_matching(cond, k + 1, "(", ")")
            if close == -1:
                continue
            if any(a.text == "memory_order_relaxed" for a in cond[k + 2 : close]):
                return t
    return None


def rule_r11(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.startswith("src/") or path.startswith(MC_SANCTIONED_PREFIXES):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "memory_order_seq_cst":
            findings.append(
                Finding(path, t.line, "R11",
                        "explicit memory_order_seq_cst restates the default",
                        "drop the argument, or weaken to the acquire/release "
                        "pair the protocol needs and document the edge",
                        severity="info")
            )
        elif t.text in ("if", "while") and match_seq(tokens, i + 1, "("):
            close = find_matching(tokens, i + 1, "(", ")")
            if close == -1:
                continue
            load_tok = _r11_condition_has_relaxed_load(tokens[i + 2 : close])
            if load_tok is None:
                continue
            body_start = close + 1
            if body_start >= len(tokens):
                continue
            if tokens[body_start].text == "{":
                body_end = find_matching(tokens, body_start, "{", "}")
                if body_end == -1:
                    continue
                body = tokens[body_start + 1 : body_end]
            else:
                j = body_start
                while j < len(tokens) and tokens[j].text != ";":
                    j += 1
                body = tokens[body_start:j]
            frees = any(b.kind == "ident" and b.text in _R11_FREE_IDENTS
                        for b in body)
            if frees:
                findings.append(
                    Finding(path, load_tok.line, "R11",
                            "relaxed load guards a free/reset branch — no "
                            "happens-before edge orders the freed object's "
                            "last use before this observation",
                            "load with std::memory_order_acquire (paired with "
                            "a release store on the publishing side), or hold "
                            "the owning mutex across the branch")
                )
    return findings


# --------------------------------------------------------------------------
# R12: cross-thread class fields not expressed via MC-wrappable types
# --------------------------------------------------------------------------
# A cross-thread class (one owning sync members — see symbols.py) whose
# fields spell raw std primitives can never run under the interleaving
# explorer: the model checker schedules only through check::mc::Atomic /
# Mutex / CondVar (which ARE the std types when RBS_MODEL_CHECK is off).
# One finding per class, naming every unwrappable field.


def rule_r12(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.startswith("src/") or path.startswith(MC_SANCTIONED_PREFIXES):
        return []
    findings: List[Finding] = []
    for cls_info in ctx.symbols.classes:
        if cls_info.file != path or not cls_info.cross_thread:
            continue
        raw_fields = [f.name for f in cls_info.fields if f.raw_sync]
        if not raw_fields:
            continue
        findings.append(
            Finding(path, cls_info.line, "R12",
                    f"cross-thread class '{cls_info.name}' holds raw-primitive "
                    f"field(s) {', '.join(repr(n) for n in raw_fields)} — it "
                    "cannot be driven by the interleaving explorer",
                    "spell them as check::mc::Atomic / check::mc::Mutex / "
                    "check::mc::CondVar (or core::AnnotatedMutex): identical "
                    "codegen with RBS_MODEL_CHECK off, and the class becomes "
                    "modelable in tests/mc/")
        )
    return findings


ALL_RULES = {
    "R1": rule_r1,
    "R2": rule_r2,
    "R3": rule_r3,
    "R4": rule_r4,
    "R5": rule_r5,
    "R6": rule_r6,
    "R7": rule_r7,
    "R8": rule_r8,
    "R9": rule_r9,
    "R10": rule_r10,
    "R11": rule_r11,
    "R12": rule_r12,
}
