"""R1–R5 implemented over the lexer's token stream.

Each rule is a function (path, tokens, ctx) -> [Finding]. `ctx` carries
cross-file facts (the index of declared unordered-container variables) so
rules can resolve names declared in a header while analyzing the .cpp.
"""
from __future__ import annotations

import dataclasses
from typing import Dict, List, Set

from .findings import Finding
from .lexer import Token, find_matching, match_seq

RAW_SCALAR_TYPES = {
    "double",
    "float",
    "int",
    "long",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "size_t",
}
UNIT_SUFFIXES = ("_ps", "_seconds", "_bytes", "_bps", "_pkts")

# Wall-clock reads are sanctioned where the regex lint sanctions them:
# telemetry (profiling/tracing needs real time) and bench harnesses.
WALL_CLOCK_ALLOWED_PREFIXES = ("src/telemetry/", "bench/")
WALL_CLOCK_IDENTS = {
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
}

SCHEDULER_CALLS = {"schedule_at", "schedule_after", "at", "after"}


@dataclasses.dataclass
class AnalysisContext:
    """Cross-file facts the rules need."""

    # Variable names declared anywhere as std::unordered_{map,set}<...>.
    unordered_names: Set[str] = dataclasses.field(default_factory=set)


def build_context(files: Dict[str, List[Token]]) -> AnalysisContext:
    ctx = AnalysisContext()
    for tokens in files.values():
        for i, t in enumerate(tokens):
            if t.text in ("unordered_map", "unordered_set"):
                j = i + 1
                if j < len(tokens) and tokens[j].text == "<":
                    close = find_matching(tokens, j, "<", ">")
                    if close != -1 and close + 1 < len(tokens):
                        name_tok = tokens[close + 1]
                        if name_tok.kind == "ident":
                            ctx.unordered_names.add(name_tok.text)
    return ctx


def _prev_text(tokens: List[Token], i: int) -> str:
    return tokens[i - 1].text if i > 0 else ""


def _is_member_or_qualified(tokens: List[Token], i: int) -> bool:
    return _prev_text(tokens, i) in (".", "->", "::")


def _in_tests(path: str) -> bool:
    return path.startswith("tests/")


# --------------------------------------------------------------------------
# R1: nondeterminism sources
# --------------------------------------------------------------------------
def rule_r1(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    wall_clock_ok = path.startswith(WALL_CLOCK_ALLOWED_PREFIXES)
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        if t.text == "random_device":
            findings.append(
                Finding(path, t.line, "R1", "std::random_device is nondeterministic",
                        "seed a sim::Rng from the simulation seed instead")
            )
        elif t.text in ("rand", "srand", "rand_r"):
            if match_seq(tokens, i + 1, "(") and not (
                _prev_text(tokens, i) in (".", "->")
            ):
                findings.append(
                    Finding(path, t.line, "R1", f"C library {t.text}() uses hidden global state",
                            "use sim::Rng forked from a named stream")
                )
        elif t.text in WALL_CLOCK_IDENTS and not wall_clock_ok:
            findings.append(
                Finding(path, t.line, "R1", f"wall-clock read via {t.text}",
                        "simulated code must use sim::SimTime / Simulation::now()")
            )
        elif t.text == "time" and match_seq(tokens, i - 1, "::", "time") and not wall_clock_ok:
            # std::time(...) / ::time(...) — not SimTime (type use, no call),
            # not member calls like sim.time().
            if match_seq(tokens, i + 1, "("):
                findings.append(
                    Finding(path, t.line, "R1", "wall-clock read via time()",
                            "simulated code must use sim::SimTime / Simulation::now()")
                )
        elif t.text in ("map", "set") and match_seq(tokens, i - 1, "::", t.text):
            # std::map/std::set keyed by a pointer type: iteration order is
            # the pointer order — an address-space-layout dependency.
            if match_seq(tokens, i + 1, "<"):
                close = find_matching(tokens, i + 1, "<", ">")
                if close != -1:
                    # First template argument: up to the first comma at depth 0.
                    depth = 0
                    first_arg_end = close
                    for j in range(i + 2, close):
                        tj = tokens[j].text
                        if tj in ("<", "(", "["):
                            depth += 1
                        elif tj in (">", ")", "]", ">>"):
                            depth -= 2 if tj == ">>" else 1
                        elif tj == "," and depth == 0:
                            first_arg_end = j
                            break
                    if first_arg_end > i + 2 and tokens[first_arg_end - 1].text == "*":
                        findings.append(
                            Finding(path, t.line, "R1",
                                    f"std::{t.text} keyed by a pointer type iterates in address order",
                                    "key by a stable id (FlowId, NodeId, name) instead of a pointer")
                        )
    return findings


# --------------------------------------------------------------------------
# R2: unordered iteration with observable effects
# --------------------------------------------------------------------------
def _statement_is_collect_into_local(body: List[Token]) -> str | None:
    """Returns the local collector name if the body is exactly
    `local.push_back(...);` / `local.insert(...);` / `local.emplace_back(...);`."""
    if len(body) < 5:
        return None
    if body[0].kind != "ident" or body[1].text != ".":
        return None
    if body[2].text not in ("push_back", "insert", "emplace_back"):
        return None
    if body[3].text != "(":
        return None
    close = find_matching(body, 3, "(", ")")
    if close == -1 or close + 1 >= len(body):
        return None
    rest = [t.text for t in body[close + 1 :]]
    return body[0].text if rest == [";"] else None


def rule_r2(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.text != "for" or not match_seq(tokens, i + 1, "("):
            continue
        close_paren = find_matching(tokens, i + 1, "(", ")")
        if close_paren == -1:
            continue
        head = tokens[i + 2 : close_paren]
        colon_idx = next(
            (k for k, ht in enumerate(head) if ht.text == ":" ), None
        )
        if colon_idx is None:
            continue  # classic for loop
        range_expr = head[colon_idx + 1 :]
        iterated = [ht.text for ht in range_expr if ht.kind == "ident"]
        if not any(name in ctx.unordered_names for name in iterated):
            continue
        # Loop body: brace block or single statement.
        body_start = close_paren + 1
        if body_start >= len(tokens):
            continue
        if tokens[body_start].text == "{":
            body_end = find_matching(tokens, body_start, "{", "}")
            if body_end == -1:
                continue
            body = tokens[body_start + 1 : body_end]
            after = tokens[body_end + 1 : body_end + 16]
        else:
            j = body_start
            while j < len(tokens) and tokens[j].text != ";":
                j += 1
            body = tokens[body_start : j + 1]
            after = tokens[j + 1 : j + 16]
        collector = _statement_is_collect_into_local(body)
        if collector is not None:
            # Sanctioned pattern: push keys into a local, then sort it.
            sorted_after = any(
                match_seq(after, k, "std", "::", "sort", "(")
                and k + 4 < len(after)
                and after[k + 4].text == collector
                for k in range(len(after))
            )
            if sorted_after:
                continue
        findings.append(
            Finding(path, t.line, "R2",
                    "iteration over an unordered container with observable effects "
                    "(order depends on hash layout)",
                    "collect keys into a vector and std::sort before acting, use an "
                    "ordered container, or justify with "
                    "// rbs-analyze: allow(R2) -- <reason>")
        )
    return findings


# --------------------------------------------------------------------------
# R3: raw unit-suffixed scalars on public API boundaries (headers)
# --------------------------------------------------------------------------
def rule_r3(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if not path.endswith((".hpp", ".h")) or not path.startswith("src/"):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in RAW_SCALAR_TYPES:
            continue
        # Skip the qualifier tokens: std :: int64_t — land on int64_t only.
        if _prev_text(tokens, i) == "::" and not match_seq(tokens, i - 2, "std"):
            continue
        j = i + 1
        if j < len(tokens) and tokens[j].kind == "ident":
            name = tokens[j].text
            stripped = name[:-1] if name.endswith("_") else name
            if not stripped.endswith(UNIT_SUFFIXES):
                continue
            nxt = tokens[j + 1].text if j + 1 < len(tokens) else ""
            # Parameter (`, name)` / `name,`), member (`name;` / `name{...};`),
            # or defaulted (`name = ...`). A following `(` would be a function
            # declarator — out of scope for R3.
            if nxt in (";", ",", ")", "{", "="):
                unit = "sim::SimTime" if stripped.endswith("_ps") or stripped.endswith("_seconds") else (
                    "core::Bytes" if stripped.endswith("_bytes") else (
                        "core::BitsPerSec" if stripped.endswith("_bps") else "core::Packets"))
                findings.append(
                    Finding(path, t.line, "R3",
                            f"raw {t.text} '{name}' carries a unit in its name",
                            f"use the strong type {unit} (src/core/units.hpp) across this API")
                )
    return findings


# --------------------------------------------------------------------------
# R4: RNG discipline
# --------------------------------------------------------------------------
def rule_r4(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    if _in_tests(path):
        return []
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.text != "Rng" or t.kind != "ident":
            continue
        j = i + 1
        # `Rng name ...` or a braced temporary `Rng{...}`.
        name_tok = None
        if j < len(tokens) and tokens[j].kind == "ident":
            name_tok = tokens[j]
            j += 1
        if j >= len(tokens):
            continue
        nxt = tokens[j].text
        if name_tok is not None and nxt == ";":
            # `Rng rng_;` (trailing underscore) is a member declaration whose
            # seeding happens in the constructor init list — the construction
            # site there is what gets checked, not the declaration.
            if name_tok.text.endswith("_"):
                continue
            findings.append(
                Finding(path, t.line, "R4",
                        f"Rng '{name_tok.text}' default-constructed (unseeded)",
                        "fork from a named stream: sim.rng().fork(kMyStream)")
            )
        elif nxt in ("{", "("):
            close = find_matching(tokens, j, nxt, "}" if nxt == "{" else ")")
            if close == -1:
                continue
            args = tokens[j + 1 : close]
            if len(args) == 1 and args[0].kind == "number":
                findings.append(
                    Finding(path, t.line, "R4",
                            "Rng seeded with a bare integer literal",
                            "derive from the run seed via a named stream: "
                            "sim.rng().fork(kMyStream) or Rng{config.seed}")
                )
    return findings


# --------------------------------------------------------------------------
# R5: event-callback lifetime
# --------------------------------------------------------------------------
def _lambda_captures_by_ref(tokens: List[Token], open_bracket: int) -> bool:
    """True if the capture list contains a by-reference capture: `[&]`,
    `[&, ...]`, `[&x]`, or the init form `[&x = expr]`. An `&` that is not
    at the start of a capture (e.g. `[p = &obj]`) is address-of, not a
    by-reference capture."""
    close = find_matching(tokens, open_bracket, "[", "]")
    if close == -1:
        return False
    caps = tokens[open_bracket + 1 : close]
    for k, tok in enumerate(caps):
        if tok.text == "&" and (k == 0 or caps[k - 1].text == ","):
            return True
    return False


def rule_r5(path: str, tokens: List[Token], ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in SCHEDULER_CALLS:
            continue
        if not _is_member_or_qualified(tokens, i):
            continue  # only method calls: sim.after(...), scheduler_->at(...)
        if not match_seq(tokens, i + 1, "("):
            continue
        close = find_matching(tokens, i + 1, "(", ")")
        if close == -1:
            continue
        j = i + 2
        while j < close:
            if tokens[j].text == "[" and tokens[j - 1].text in ("(", ","):
                if _lambda_captures_by_ref(tokens, j):
                    findings.append(
                        Finding(path, tokens[j].line, "R5",
                                f"by-reference capture in a lambda passed to {t.text}() — "
                                "the pooled event may outlive the captured frame",
                                "capture by value (or capture `this` and use members); "
                                "events fire after the enclosing scope returns")
                    )
                lam_close = find_matching(tokens, j, "[", "]")
                j = lam_close + 1 if lam_close != -1 else j + 1
                continue
            j += 1
    return findings


ALL_RULES = {
    "R1": rule_r1,
    "R2": rule_r2,
    "R3": rule_r3,
    "R4": rule_r4,
    "R5": rule_r5,
}
