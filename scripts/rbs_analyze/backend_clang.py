"""libclang backend: AST-grounded facts from compile_commands.json.

Used automatically when the `clang` Python package (libclang bindings) is
importable — `python3 -c "import clang.cindex"` is the preflight. The CI
image installs `python3-clang`; the default dev container does not, and
falls back to the textual backend with identical rule ids and workflow.

The visitors mirror scripts/rbs_analyze/rules.py rule-for-rule; the AST
gives them exact type information where the textual backend approximates
with declared-name indexes.

The concurrency rules (R6–R8) are the exception: they hinge on declaration
shapes (RBS_GUARDED_BY annotation macros, capture lists, enum-constant
adjacency) that libclang does not surface — GNU thread-safety attributes
are invisible to the Python bindings. Both backends therefore run R6–R8
through the shared token engine over the same cross-TU symbol index, which
makes their findings identical by construction rather than by convention.
"""
from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from .findings import Finding, apply_suppressions, collect_suppressions
from .rules import (
    ALL_RULES,
    RAW_SCALAR_TYPES,
    SCHEDULER_CALLS,
    UNIT_SUFFIXES,
    WALL_CLOCK_ALLOWED_PREFIXES,
    WALL_CLOCK_IDENTS,
    build_context,
)

NAME = "clang"

# Rules evaluated by the shared token engine in every backend (see module
# docstring). R9 rides along: it reads raw text, not the AST, so both
# backends agree on every metric-name finding by construction. R10–R12 hinge
# on spelling (std:: qualification vs the check::mc wrapper names), which
# the AST erases through typedefs — token engine in both backends.
TOKEN_ENGINE_RULES = ("R6", "R7", "R8", "R9", "R10", "R11", "R12")


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401

        return True
    except ImportError:
        return False


def _rel(repo: Path, filename: str) -> Optional[str]:
    try:
        return Path(filename).resolve().relative_to(repo.resolve()).as_posix()
    except ValueError:
        return None


def _is_unordered(type_spelling: str) -> bool:
    return "unordered_map<" in type_spelling or "unordered_set<" in type_spelling


def analyze(repo: Path, files: List[Path], rules: List[str],
            compdb_dir: Optional[Path] = None) -> List[Finding]:
    import clang.cindex as ci

    ast_rules = [r for r in rules if r not in TOKEN_ENGINE_RULES]
    token_rules = [r for r in rules if r in TOKEN_ENGINE_RULES]

    findings: List[Finding] = []
    if token_rules:
        findings.extend(_token_engine(repo, files, token_rules))

    index = ci.Index.create()
    compdb = None
    if compdb_dir is not None and (compdb_dir / "compile_commands.json").exists():
        compdb = ci.CompilationDatabase.fromDirectory(str(compdb_dir))

    want = {f.resolve() for f in files}
    sources = [f for f in want if f.suffix in (".cpp", ".cc")]

    for src in sorted(sources):
        args = ["-std=c++20", f"-I{repo / 'src'}"]
        if compdb is not None:
            cmds = compdb.getCompileCommands(str(src))
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]  # strip compiler and file
                args = [a for a in raw if a not in ("-c", "-o") and not a.endswith(".o")]
        try:
            tu = index.parse(str(src), args=args)
        except ci.TranslationUnitLoadError:
            continue
        findings.extend(_visit_tu(repo, tu, ast_rules, want))

    suppressions = {}
    for f in files:
        rel = _rel(repo, str(f))
        if rel is not None:
            try:
                suppressions[rel] = collect_suppressions((repo / rel).read_text(errors="replace"))
            except OSError:
                pass
    # A header is parsed once per includer: dedupe identical findings.
    return sorted(set(apply_suppressions(findings, suppressions)))


def _token_engine(repo: Path, files: List[Path], rules: List[str]) -> List[Finding]:
    """Runs the shared token-based rules (R6–R8) exactly as the textual
    backend does, so both backends agree on every concurrency finding."""
    from .lexer import tokenize

    tokens = {}
    for f in files:
        rel = _rel(repo, str(f)) if f.is_absolute() else f.as_posix()
        if rel is None:
            continue
        try:
            text = (repo / rel).read_text(errors="replace")
        except OSError:
            continue
        tokens[rel] = tokenize(text)
    ctx = build_context(tokens, repo)
    out: List[Finding] = []
    for rel, toks in tokens.items():
        for rule in rules:
            out.extend(ALL_RULES[rule](rel, toks, ctx))
    return out


def _visit_tu(repo: Path, tu, rules: List[str], want) -> List[Finding]:
    import clang.cindex as ci

    K = ci.CursorKind
    out: List[Finding] = []

    def loc(cursor):
        f = cursor.location.file
        if f is None:
            return None, 0
        p = Path(f.name)
        if p.resolve() not in want and not str(p).startswith(str(repo)):
            return None, 0
        return _rel(repo, f.name), cursor.location.line

    def walk(cursor):
        rel, line = loc(cursor)
        if rel is not None:
            kind = cursor.kind
            if "R1" in rules:
                if kind in (K.DECL_REF_EXPR, K.TYPE_REF):
                    name = cursor.spelling
                    if name == "random_device":
                        out.append(Finding(rel, line, "R1",
                                           "std::random_device is nondeterministic",
                                           "seed a sim::Rng from the simulation seed instead"))
                    elif name in WALL_CLOCK_IDENTS and not rel.startswith(
                        WALL_CLOCK_ALLOWED_PREFIXES
                    ):
                        out.append(Finding(rel, line, "R1", f"wall-clock read via {name}",
                                           "simulated code must use sim::SimTime / Simulation::now()"))
                if kind == K.CALL_EXPR and cursor.spelling in ("rand", "srand", "rand_r"):
                    out.append(Finding(rel, line, "R1",
                                       f"C library {cursor.spelling}() uses hidden global state",
                                       "use sim::Rng forked from a named stream"))
                if kind in (K.VAR_DECL, K.FIELD_DECL):
                    ts = cursor.type.spelling
                    for cont in ("std::map<", "std::set<"):
                        if ts.startswith(cont) and ts[len(cont):].split(",")[0].rstrip().endswith("*"):
                            out.append(Finding(rel, line, "R1",
                                               "ordered container keyed by a pointer type "
                                               "iterates in address order",
                                               "key by a stable id instead of a pointer"))
            if "R2" in rules and kind == K.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if len(children) >= 2 and _is_unordered(children[-2].type.spelling):
                    out.append(Finding(rel, line, "R2",
                                       "iteration over an unordered container with observable "
                                       "effects (order depends on hash layout)",
                                       "collect keys into a vector and std::sort before acting, "
                                       "use an ordered container, or justify with "
                                       "// rbs-analyze: allow(R2) -- <reason>"))
            if "R3" in rules and rel.endswith((".hpp", ".h")) and rel.startswith("src/"):
                if kind in (K.PARM_DECL, K.FIELD_DECL):
                    name = cursor.spelling or ""
                    stripped = name[:-1] if name.endswith("_") else name
                    base = cursor.type.spelling.replace("const", "").replace("std::", "").strip()
                    if stripped.endswith(UNIT_SUFFIXES) and base in RAW_SCALAR_TYPES:
                        out.append(Finding(rel, line, "R3",
                                           f"raw {base} '{name}' carries a unit in its name",
                                           "use the strong types in src/core/units.hpp across this API"))
            if "R4" in rules and not rel.startswith("tests/"):
                if kind == K.VAR_DECL and cursor.type.spelling.endswith("Rng"):
                    kids = list(cursor.get_children())
                    lits = [c for c in kids for g in [c] if g.kind == K.INTEGER_LITERAL]
                    if not kids:
                        out.append(Finding(rel, line, "R4",
                                           f"Rng '{cursor.spelling}' default-constructed (unseeded)",
                                           "fork from a named stream: sim.rng().fork(kMyStream)"))
                    elif lits:
                        out.append(Finding(rel, line, "R4",
                                           "Rng seeded with a bare integer literal",
                                           "derive from the run seed via a named stream"))
            if "R5" in rules and kind == K.CALL_EXPR and cursor.spelling in SCHEDULER_CALLS:
                for child in cursor.walk_preorder():
                    if child.kind == K.LAMBDA_EXPR:
                        toks = [t.spelling for t in child.get_tokens()][:32]
                        try:
                            close = toks.index("]")
                        except ValueError:
                            close = len(toks)
                        caps = toks[1:close]
                        if any(t == "&" and (k == 0 or caps[k - 1] == ",")
                               for k, t in enumerate(caps)):
                            crel, cline = loc(child)
                            if crel is not None:
                                out.append(Finding(crel, cline, "R5",
                                                   f"by-reference capture in a lambda passed to "
                                                   f"{cursor.spelling}() — the pooled event may "
                                                   "outlive the captured frame",
                                                   "capture by value (or capture `this` and use "
                                                   "members); events fire after the enclosing "
                                                   "scope returns"))
        for child in cursor.get_children():
            walk(child)

    walk(tu.cursor)
    return out
