"""CLI: python3 -m rbs_analyze (run from scripts/, or with PYTHONPATH=scripts).

Exit codes: 0 clean vs baseline · 1 findings above baseline · 2 tool error.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import RULES, RULE_TITLES, __version__
from . import baseline as baseline_mod
from .driver import run


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="rbs-analyze",
        description="Simulator-semantics static analysis for rbs (rules R1-R12).",
    )
    ap.add_argument("--repo", type=Path, default=None,
                    help="repository root (default: auto-detect from this file)")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json (default: <repo>/build/compile_commands.json)")
    ap.add_argument("--backend", choices=("auto", "clang", "textual"), default="auto")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated subset of rules to run")
    ap.add_argument("--files", nargs="*", type=Path, default=None,
                    help="analyze only these files (fixture/test mode)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline JSON (default: scripts/rbs_analyze/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline: any finding is a failure")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run (ratchet: total may not grow)")
    ap.add_argument("--force-baseline-growth", action="store_true",
                    help="allow --update-baseline to raise the total (breaks the ratchet; "
                         "reserve for rule changes)")
    ap.add_argument("--json", type=Path, default=None, help="write findings as JSON")
    ap.add_argument("--quiet", action="store_true", help="suppress per-finding text")
    args = ap.parse_args(argv)

    repo = (args.repo or Path(__file__).resolve().parents[2]).resolve()
    compdb = args.compdb
    if compdb is None:
        cand = repo / "build" / "compile_commands.json"
        compdb = cand if cand.exists() else None

    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    bad = [r for r in rules if r not in RULES]
    if bad:
        print(f"rbs-analyze: unknown rule(s): {', '.join(bad)}", file=sys.stderr)
        return 2

    files = None
    if args.files is not None:
        files = [f if f.is_absolute() else (Path.cwd() / f) for f in args.files]

    try:
        backend_name, findings = run(repo, files, args.backend, rules, compdb)
    except RuntimeError as e:
        print(f"rbs-analyze: {e}", file=sys.stderr)
        return 2

    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(
            {
                "version": __version__,
                "backend": backend_name,
                "rules": {r: RULE_TITLES[r] for r in rules},
                "findings": [f.as_dict() for f in findings],
            },
            indent=2,
        ) + "\n")

    if not args.quiet:
        for f in findings:
            print(f.render())

    # Only error-severity findings gate the exit code and the baseline;
    # informational findings (e.g. R11's needless-seq_cst prong) are
    # advisory — printed and JSON-exported above, never a failure.
    errors = [f for f in findings if f.severity == "error"]
    info_count = len(findings) - len(errors)

    baseline_path = args.baseline or (repo / "scripts" / "rbs_analyze" / "baseline.json")

    if args.update_baseline:
        new_counts = baseline_mod.counts_of(errors)
        old_counts = baseline_mod.load(baseline_path)
        old_total = baseline_mod.total(old_counts)
        new_total = baseline_mod.total(new_counts)
        if baseline_path.exists() and new_total > old_total and not args.force_baseline_growth:
            print(
                f"rbs-analyze: refusing to grow the baseline "
                f"({old_total} -> {new_total} findings); fix the new findings or "
                f"pass --force-baseline-growth if a rule legitimately changed",
                file=sys.stderr,
            )
            return 1
        baseline_mod.save(baseline_path, new_counts)
        print(f"rbs-analyze[{backend_name}]: baseline updated: "
              f"{new_total} accepted finding(s) at {baseline_path}")
        return 0

    if args.no_baseline:
        n = len(errors)
        extra = f" + {info_count} informational" if info_count else ""
        print(f"rbs-analyze[{backend_name}]: {n} finding(s){extra}, no baseline")
        return 1 if n else 0

    base = baseline_mod.load(baseline_path)
    regressions, improvements = baseline_mod.compare(errors, base)
    for line in improvements:
        print(f"rbs-analyze: improved: {line}")
    if regressions:
        print(f"rbs-analyze[{backend_name}]: FAIL — new findings above baseline:",
              file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    extra = f" + {info_count} informational" if info_count else ""
    print(f"rbs-analyze[{backend_name}]: clean — {len(errors)} finding(s){extra}, "
          f"all within baseline ({baseline_mod.total(base)} accepted)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
