#!/usr/bin/env python3
"""Compare two engine-benchmark snapshots and fail on regressions.

Usage:
    scripts/bench_compare.py OLD.json NEW.json [--threshold 0.10]
                             [--filter REGEX] [--quiet]

Accepts either snapshot format the repo produces:

  * raw google-benchmark JSON (``--benchmark_out``), e.g. the
    ``build/BENCH_smoke.json`` written by the ``bench_smoke`` target;
  * the curated ``BENCH_engine.json``-style document (a ``benchmarks`` list
    with ``after_real_time``/``time_unit`` fields) — the ``after`` column is
    taken as that snapshot's measurement.

Benchmarks are matched by name. A benchmark whose real time grew by more
than ``--threshold`` (default 10%) is a regression; any regression makes the
exit status 1. Benchmarks present in only one snapshot are reported but are
not failures (suites grow over time).

Timing noise caveat: single-run snapshots on a throttling machine can move
more than 10% on their own. Compare like with like — same machine, same
build type, ideally repetition medians — before treating a failure as real.
"""

import argparse
import json
import re
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _load(path):
    """Returns {benchmark name: real time in ns} for either snapshot format."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        unit = _TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if name is None or unit is None:
            continue
        # google-benchmark emits aggregate rows (mean/median/stddev) when run
        # with repetitions; prefer the median aggregate and skip the rest.
        run_type = bench.get("run_type")
        if run_type == "aggregate" and bench.get("aggregate_name") != "median":
            continue
        if run_type == "aggregate":
            name = bench.get("run_name", name)
        time = bench.get("after_real_time", bench.get("real_time"))
        if time is None:
            continue
        # Aggregate medians overwrite the per-iteration rows seen earlier.
        if run_type == "aggregate" or name not in out:
            out[name] = float(time) * unit
    return out


def _fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3f} {unit}"
    return f"{ns:.1f} ns"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline snapshot JSON")
    parser.add_argument("new", help="candidate snapshot JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional slowdown before failing "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--filter", default="",
                        help="only compare benchmarks whose name matches "
                             "this regex")
    parser.add_argument("--quiet", action="store_true",
                        help="print regressions only")
    args = parser.parse_args(argv)

    old, new = _load(args.old), _load(args.new)
    if not old or not new:
        print(f"bench_compare: no benchmarks parsed from "
              f"{args.old if not old else args.new}", file=sys.stderr)
        return 2

    pattern = re.compile(args.filter) if args.filter else None
    names = sorted(set(old) | set(new))
    regressions = []
    for name in names:
        if pattern and not pattern.search(name):
            continue
        if name not in old or name not in new:
            if not args.quiet:
                which = "candidate" if name not in old else "baseline"
                print(f"  {name}: only in {which} snapshot (skipped)")
            continue
        ratio = new[name] / old[name] if old[name] else float("inf")
        regressed = ratio > 1.0 + args.threshold
        if regressed:
            regressions.append(name)
        if regressed or not args.quiet:
            marker = "REGRESSION" if regressed else (
                "improved" if ratio < 1.0 - args.threshold else "ok")
            print(f"  {name}: {_fmt_ns(old[name])} -> {_fmt_ns(new[name])} "
                  f"({ratio - 1.0:+.1%} vs baseline) {marker}")

    if regressions:
        print(f"bench_compare: {len(regressions)} benchmark(s) slower than "
              f"baseline by more than {args.threshold:.0%}:", file=sys.stderr)
        for name in regressions:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK — no benchmark regressed by more than "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
