#!/usr/bin/env python3
"""Thread-safety annotation harness: proves the annotations are load-bearing.

Two legs, both requiring clang++ (the only compiler implementing
-Wthread-safety):

  positive  the annotated cross-thread TUs (sweep engine, sweep profiler)
            and tests/thread_safety/guarded_access_ok.cpp must compile
            cleanly under -Wthread-safety -Werror=thread-safety.

  negative  tests/thread_safety/guarded_access_poke.cpp reads ONE guarded
            SweepBatchState field without the mutex (selected with
            -DRBS_TSA_FIELD=<field>) and must FAIL to compile, once per
            guarded field. If any poke compiles, an RBS_GUARDED_BY was
            removed or weakened — the harness (and the CI thread-safety
            leg) fails, naming the field.

This is the machine check behind the claim in sweep_dispatch.hpp: deleting
any one annotation there turns a data-race hazard back into silently
accepted code, so the harness turns it into a build failure instead.

Usage: python3 scripts/check_thread_safety.py [--clang PATH]
Exit 0 all checks pass · 1 a check failed · 2 no usable clang++.
"""
from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

# TUs whose annotations must hold under -Werror=thread-safety.
POSITIVE_TUS = (
    "src/experiment/sweep.cpp",
    "src/telemetry/sweep_profile.cpp",
    "tests/thread_safety/guarded_access_ok.cpp",
)

POKE_TU = "tests/thread_safety/guarded_access_poke.cpp"

# Every RBS_GUARDED_BY field of detail::SweepBatchState. Keep in sync with
# src/experiment/sweep_dispatch.hpp — a field listed here but no longer
# guarded there is exactly the regression the negative leg exists to catch.
GUARDED_FIELDS = (
    "point",
    "batch_size",
    "chunk",
    "in_flight",
    "sleeping_helpers",
    "first_error",
)

BASE_FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Werror=thread-safety",
    f"-I{REPO / 'src'}",
]


def compile_tu(clang: str, tu: Path, extra: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [clang, *BASE_FLAGS, *extra, str(tu)],
        capture_output=True, text=True, check=False,
    )


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--clang", default=None,
                    help="clang++ to use (default: $RBS_CLANGXX or clang++ on PATH)")
    args = ap.parse_args()

    import os
    clang = args.clang or os.environ.get("RBS_CLANGXX") or shutil.which("clang++")
    if not clang or not shutil.which(clang):
        print("check_thread_safety: no clang++ found — the thread-safety "
              "analysis only exists in Clang. Install clang or pass --clang.",
              file=sys.stderr)
        return 2

    failures: list[str] = []

    for rel in POSITIVE_TUS:
        tu = REPO / rel
        proc = compile_tu(clang, tu, [])
        if proc.returncode != 0:
            failures.append(
                f"positive: {rel} failed -Wthread-safety:\n{proc.stderr.strip()}"
            )
        else:
            print(f"check_thread_safety: ok (positive) {rel}")

    for field in GUARDED_FIELDS:
        proc = compile_tu(clang, REPO / POKE_TU, [f"-DRBS_TSA_FIELD={field}"])
        if proc.returncode == 0:
            failures.append(
                f"negative: unguarded read of SweepBatchState::{field} COMPILED — "
                "its RBS_GUARDED_BY annotation in src/experiment/sweep_dispatch.hpp "
                "is missing or no longer enforced"
            )
        else:
            print(f"check_thread_safety: ok (negative) {POKE_TU} field={field}")

    if failures:
        print("check_thread_safety: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_thread_safety: {len(POSITIVE_TUS)} positive and "
          f"{len(GUARDED_FIELDS)} negative checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
