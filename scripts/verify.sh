#!/usr/bin/env bash
# Full verification pass:
#   1. tier-1: RelWithDebInfo build + complete ctest suite
#   2. bench smoke: one short repetition of the engine microbenchmarks
#   3. TSAN: rebuild scheduler + sweep runner under ThreadSanitizer and run
#      the concurrency-sensitive tests (scheduler_test, sweep_test)
#
# Usage: scripts/verify.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [1/3] tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/3] bench smoke ==="
cmake --build build -j "$JOBS" --target bench_smoke

echo "=== [3/3] ThreadSanitizer: scheduler_test + sweep_test ==="
cmake -B build-tsan -S . -DRBS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target scheduler_test sweep_test
./build-tsan/tests/scheduler_test
./build-tsan/tests/sweep_test

echo "verify: OK"
