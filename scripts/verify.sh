#!/usr/bin/env bash
# Full verification pass:
#   1. tier-1: RelWithDebInfo build + complete ctest suite
#   2. determinism lint: scripts/lint_determinism.py over src/
#   3. bench smoke: one short repetition of the engine microbenchmarks
#   4. telemetry smoke: one instrumented rbsim run; validate the Chrome
#      trace and metrics artifacts with scripts/check_telemetry.py
#   5. ASan/UBSan + RBS_CHECKED: rebuild with AddressSanitizer +
#      UndefinedBehaviorSanitizer and the hot-path invariant macros armed,
#      run the complete test suite
#   6. TSAN: rebuild scheduler + sweep runner under ThreadSanitizer and run
#      the concurrency-sensitive tests (scheduler_test, sweep_test)
#
# Usage: scripts/verify.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [1/6] tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/6] determinism lint ==="
cmake --build build --target lint

echo "=== [3/6] bench smoke ==="
cmake --build build -j "$JOBS" --target bench_smoke

echo "=== [4/6] telemetry smoke ==="
mkdir -p build/telemetry_smoke
./build/examples/rbsim mode=long flows=20 duration=2 warmup=1 \
  --metrics build/telemetry_smoke/metrics.json \
  --trace build/telemetry_smoke/trace.json --profile
python3 scripts/check_telemetry.py \
  --trace build/telemetry_smoke/trace.json \
  --metrics build/telemetry_smoke/metrics.json \
  --min-trace-events 1000

echo "=== [5/6] ASan/UBSan + RBS_CHECKED: full test suite ==="
cmake -B build-asan -S . -DRBS_ASAN=ON -DRBS_CHECKED=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [6/6] ThreadSanitizer: scheduler_test + sweep_test ==="
cmake -B build-tsan -S . -DRBS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target scheduler_test sweep_test
./build-tsan/tests/scheduler_test
./build-tsan/tests/sweep_test

echo "verify: OK"
