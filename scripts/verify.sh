#!/usr/bin/env bash
# Full verification pass:
#   0. preflight: every tool the pass needs must exist up front; a missing
#      tool is a hard failure with a named diagnostic, never a silent skip
#   1. tier-1: RelWithDebInfo build + complete ctest suite
#   2. determinism lint: scripts/lint_determinism.py over src/
#   3. semantics analysis: rbs-analyze rules R1-R12 against the checked-in
#      baseline, plus the analyzer's own fixture corpus
#   4. fault scenarios: the deterministic failure-scenario suite plus an
#      rbsim --faults smoke run (schedule parse, arming banner, fault report)
#   5. bench smoke: one short repetition of the engine microbenchmarks
#   6. telemetry smoke: one instrumented rbsim run with per-flow rollups and
#      the flight recorder armed; validate the Chrome trace, metrics, and
#      flow-stats artifacts (and any post-mortem) with check_telemetry.py
#   7. CCA smoke: one short rbsim run per modern congestion-control flavor
#      (cubic, bbr, dctcp); each must finish, report utilization, and label
#      every flow with its flavor in the flow-stats rollup
#   8. ASan/UBSan + RBS_CHECKED: rebuild with AddressSanitizer +
#      UndefinedBehaviorSanitizer and the hot-path invariant macros armed,
#      run the complete test suite
#   9. TSAN: rebuild scheduler + sweep runner under ThreadSanitizer and run
#      the concurrency-sensitive tests (scheduler_test, sweep_test,
#      timing_wheel_test, property_test, dispatch_stress_test)
#  10. model check: rebuild with RBS_MODEL_CHECK=ON (instrumentation is
#      per-target in tests/mc/ — production libraries are untouched) and
#      run the interleaving explorer: harness conformance, exhaustive
#      dispatch-protocol models, mutation kills, the stats ordering pin
#  11. thread-safety annotations: clang++ -Wthread-safety positive +
#      compile-fail harness (scripts/check_thread_safety.py). Needs a
#      clang++ binary; skipped loudly when none exists (the analysis is
#      Clang-only — there is nothing equivalent to run under GCC).
#
# Usage: scripts/verify.sh [jobs]
#
# gnuplot is only needed to render the .gp figure scripts the bench targets
# emit; set RBS_VERIFY_ALLOW_MISSING_GNUPLOT=1 to run the pass without it.
# The opt-out is printed loudly — there is no silent skip.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [0/11] preflight: required tools ==="
missing=0
for tool in cmake ctest python3 gnuplot; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    if [[ "$tool" == gnuplot && "${RBS_VERIFY_ALLOW_MISSING_GNUPLOT:-0}" == 1 ]]; then
      echo "verify: WARNING: 'gnuplot' not found; figure rendering disabled" \
           "(RBS_VERIFY_ALLOW_MISSING_GNUPLOT=1)" >&2
      continue
    fi
    case "$tool" in
      cmake)   why="configures and drives every build in this pass" ;;
      ctest)   why="runs the test suites" ;;
      python3) why="runs the determinism lint, semantics analyzer, and telemetry validation" ;;
      gnuplot) why="renders emitted .gp figure scripts (set RBS_VERIFY_ALLOW_MISSING_GNUPLOT=1 to proceed without figures)" ;;
    esac
    echo "verify: FATAL: required tool '$tool' not found in PATH — $why" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  echo "verify: aborting before any build step; install the tools above" >&2
  exit 1
fi

echo "=== [1/11] tier-1 build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "=== [2/11] determinism lint ==="
cmake --build build --target lint

echo "=== [3/11] semantics analysis (rbs-analyze + fixture corpus) ==="
# Preflight: the analyzer package must be importable before we trust a pass.
PYTHONPATH=scripts python3 -c "import rbs_analyze" || {
  echo "verify: FATAL: scripts/rbs_analyze is not importable" >&2
  exit 1
}
cmake --build build --target analyze
python3 scripts/run_analyzer_fixtures.py

echo "=== [4/11] fault scenarios + rbsim --faults smoke ==="
ctest --test-dir build --output-on-failure -j "$JOBS" \
  -R 'FaultScenarioTest|FaultFuzz|FaultScheduleTest|FaultLinkTest|InjectorTest'
mkdir -p build/fault_smoke
cat > build/fault_smoke/faults.txt <<'EOF'
# verify.sh smoke schedule: one mid-run outage plus a loss burst.
down bottleneck_fwd 1.2 0.1
loss bottleneck_fwd 1.6 0.2 0.3
EOF
./build/examples/rbsim mode=long flows=10 duration=2 warmup=1 \
  --faults build/fault_smoke/faults.txt | tee build/fault_smoke/out.txt
grep -q "fault schedule" build/fault_smoke/out.txt
grep -q "injected faults" build/fault_smoke/out.txt
# A malformed schedule must be rejected with a line-numbered diagnostic.
if ./build/examples/rbsim mode=long duration=1 warmup=0 \
     --faults <(echo "bogus line") >/dev/null 2>build/fault_smoke/err.txt; then
  echo "verify: FATAL: rbsim accepted a malformed fault schedule" >&2
  exit 1
fi
grep -q "line 1" build/fault_smoke/err.txt

echo "=== [5/11] bench smoke ==="
cmake --build build -j "$JOBS" --target bench_smoke

echo "=== [6/11] telemetry smoke ==="
mkdir -p build/telemetry_smoke
./build/examples/rbsim mode=long flows=20 duration=2 warmup=1 \
  --metrics build/telemetry_smoke/metrics.json \
  --trace build/telemetry_smoke/trace.json --profile --flow-stats \
  --post-mortem build/telemetry_smoke/post_mortem.json
python3 scripts/check_telemetry.py \
  --trace build/telemetry_smoke/trace.json \
  --metrics build/telemetry_smoke/metrics.json \
  --min-trace-events 1000
# A healthy run writes no post-mortem; validate only if the recorder fired.
if [ -f build/telemetry_smoke/post_mortem.json ]; then
  python3 scripts/check_telemetry.py \
    --post-mortem build/telemetry_smoke/post_mortem.json
fi

echo "=== [7/11] CCA smoke: cubic / bbr / dctcp short runs ==="
mkdir -p build/cca_smoke
for cca in cubic bbr dctcp; do
  ./build/examples/rbsim mode=long flows=6 duration=2 warmup=1 "cca=$cca" \
    --flow-stats --metrics "build/cca_smoke/metrics_$cca.json" \
    > "build/cca_smoke/out_$cca.txt"
  grep -q "utilization" "build/cca_smoke/out_$cca.txt"
  # Every flow must be labeled with its flavor in the flow-stats rollup,
  # and the per-CCA gauge must have reached the metrics document.
  RBS_CCA="$cca" python3 - <<'EOF'
import json, os
cca = os.environ["RBS_CCA"]
doc = json.load(open(f"build/cca_smoke/metrics_{cca}.json"))
labeled = doc["flow_stats"]["cca"]
assert labeled.get(cca, 0) == 6, f"cca={cca}: flow labels wrong: {labeled}"
names = {m["name"] for m in doc["snapshot"]["metrics"]}
assert f"flowstats.cca.{cca}" in names, \
    f"cca={cca}: per-CCA gauge missing from metrics"
EOF
done

echo "=== [8/11] ASan/UBSan + RBS_CHECKED: full test suite ==="
cmake -B build-asan -S . -DRBS_ASAN=ON -DRBS_CHECKED=ON >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== [9/11] ThreadSanitizer: concurrency tests ==="
cmake -B build-tsan -S . -DRBS_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target scheduler_test sweep_test timing_wheel_test property_test \
  dispatch_stress_test
./build-tsan/tests/scheduler_test
./build-tsan/tests/sweep_test
./build-tsan/tests/timing_wheel_test
./build-tsan/tests/property_test
./build-tsan/tests/dispatch_stress_test

echo "=== [10/11] model check: interleaving explorer over tests/mc ==="
# RBS_MODEL_CHECK is applied per-target inside tests/mc/ only; the
# production libraries in build-mc are compiled exactly as in tier-1.
cmake -B build-mc -S . -DRBS_MODEL_CHECK=ON >/dev/null
cmake --build build-mc -j "$JOBS" \
  --target mc_harness_test dispatch_protocol_mc_test dispatch_mutation_test \
  dispatch_stats_mc_test
ctest --test-dir build-mc --output-on-failure -R '^lint\.model_check\.'

echo "=== [11/11] thread-safety annotations (clang -Wthread-safety) ==="
if command -v clang++ >/dev/null 2>&1; then
  python3 scripts/check_thread_safety.py
else
  echo "verify: WARNING: 'clang++' not found; skipping the thread-safety" \
       "annotation harness — only Clang implements -Wthread-safety." \
       "The CI thread-safety job still enforces it." >&2
fi

echo "verify: OK"
